//! A single consensus instance for the crash-recovery model.
//!
//! Each broadcast round `k` of the atomic broadcast protocol runs one
//! instance of Uniform Consensus (Section 3.4: Termination for good
//! processes, Uniform Validity, Uniform Agreement).  The implementation is
//! a ballot-based single-decree protocol (the Synod protocol) hardened for
//! crash-recovery:
//!
//! * the *proposal*, the acceptor's *promise*, its *accepted value* and the
//!   learned *decision* are written to stable storage before they take
//!   effect, so a crash can never un-promise or un-accept anything
//!   (Uniform Agreement survives crashes);
//! * `propose` is idempotent: re-proposing after a recovery keeps the value
//!   that was logged first (property P4 of the paper);
//! * ballots embed their coordinator, coordinators are chosen by the Ω
//!   output of the failure detector, and every message is retransmitted
//!   periodically, so the instance terminates once a majority of processes
//!   stay up long enough and the detector stabilises;
//! * undecided participants periodically `Query` their peers, and anyone
//!   who knows the decision re-announces it, so decisions propagate to
//!   recovering processes over the fair-lossy links.

use std::collections::{BTreeMap, BTreeSet};

use abcast_net::ActorContext;
use abcast_storage::{keys, SharedStorage, TypedStorageExt, WriteBatch};
use abcast_types::codec::{Decode, Encode};
use abcast_types::{Ballot, ProcessId, Result, Round};

use crate::message::InstanceMsg;

/// Marker trait for values a consensus instance can agree on.
///
/// Blanket-implemented for every type with the required bounds, so callers
/// never implement it manually.
pub trait ConsensusValue:
    Clone + Eq + std::fmt::Debug + Encode + Decode + Send + 'static
{
}

impl<T> ConsensusValue for T where
    T: Clone + Eq + std::fmt::Debug + Encode + Decode + Send + 'static
{
}

/// Leader-side phase of the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Not currently driving a ballot.
    Idle,
    /// Waiting for a majority of promises for `current_ballot`.
    Preparing,
    /// Waiting for a majority of accepts for `current_ballot`.
    Accepting,
}

/// One crash-recovery consensus instance.
#[derive(Debug)]
pub struct ConsensusInstance<V> {
    instance: Round,
    persist: bool,

    // --- state mirrored on stable storage (when `persist` is true) ---
    proposal: Option<V>,          // xanalyze:twin(consensus_proposal)
    promised: Option<Ballot>,     // xanalyze:twin(consensus_promised)
    accepted: Option<(Ballot, V)>, // xanalyze:twin(consensus_accepted)
    decision: Option<V>,          // xanalyze:twin(consensus_decided)

    // --- volatile leader-side state ---
    phase: Phase,
    current_ballot: Option<Ballot>,
    promises: BTreeMap<ProcessId, Option<(Ballot, V)>>,
    accepts: BTreeSet<ProcessId>,
    chosen: Option<V>,
    highest_ballot_number: u64,
}

impl<V: ConsensusValue> ConsensusInstance<V> {
    /// Creates a fresh instance with no persistent state yet.
    pub fn new(instance: Round, persist: bool) -> Self {
        ConsensusInstance {
            instance,
            persist,
            proposal: None,
            promised: None,
            accepted: None,
            decision: None,
            phase: Phase::Idle,
            current_ballot: None,
            promises: BTreeMap::new(),
            accepts: BTreeSet::new(),
            chosen: None,
            highest_ballot_number: 0,
        }
    }

    /// Rebuilds an instance from stable storage after a crash.
    pub fn recover(instance: Round, persist: bool, storage: &SharedStorage) -> Result<Self> {
        let mut me = ConsensusInstance::new(instance, persist);
        me.proposal = storage.load_value(&keys::consensus_proposal(instance))?;
        me.promised = storage.load_value(&keys::consensus_promised(instance))?;
        me.accepted = storage.load_value(&keys::consensus_accepted(instance))?;
        me.decision = storage.load_value(&keys::consensus_decided(instance))?;
        me.highest_ballot_number = me.promised.map(|b| b.number).unwrap_or(0);
        Ok(me)
    }

    /// The instance number.
    pub fn instance(&self) -> Round {
        self.instance
    }

    /// The value this process proposed, if it has proposed.
    pub fn proposal(&self) -> Option<&V> {
        self.proposal.as_ref()
    }

    /// `true` if this process has proposed a value to this instance.
    pub fn has_proposal(&self) -> bool {
        self.proposal.is_some()
    }

    /// The decided value, if this process has learned it.
    pub fn decision(&self) -> Option<&V> {
        self.decision.as_ref()
    }

    /// `true` once the decision is known locally.
    pub fn is_decided(&self) -> bool {
        self.decision.is_some()
    }

    /// Proposes `value`.  The first proposal is logged to stable storage
    /// *before* any message is sent (the log operation the paper counts);
    /// proposing again — e.g. after a recovery — keeps the logged value and
    /// ignores the new one, making the primitive idempotent (property P4).
    pub fn propose(&mut self, value: V, ctx: &mut dyn ActorContext<InstanceMsg<V>>) {
        if self.proposal.is_none() {
            if self.persist {
                let _ = ctx
                    .storage()
                    .store_value(&keys::consensus_proposal(self.instance), &value);
            }
            self.proposal = Some(value);
        }
        // Eagerly ask whether the instance is already decided: a recovering
        // process re-proposing to an old instance learns the outcome in one
        // round trip instead of waiting for its Query tick.
        if self.decision.is_none() {
            ctx.multisend(InstanceMsg::Query);
        }
    }

    /// Handles one message of this instance.  Returns the decided value if
    /// this message is what decided (or taught us) it.
    pub fn on_message(
        &mut self,
        from: ProcessId,
        msg: InstanceMsg<V>,
        ctx: &mut dyn ActorContext<InstanceMsg<V>>,
    ) -> Option<V> {
        match msg {
            InstanceMsg::Prepare { ballot } => {
                self.observe_ballot(ballot);
                if self.promised.is_none_or(|p| ballot >= p) {
                    self.promised = Some(ballot);
                    self.persist_acceptor(ctx);
                    ctx.send(
                        from,
                        InstanceMsg::Promise {
                            ballot,
                            accepted: self.accepted.clone(),
                        },
                    );
                } else if let Some(promised) = self.promised {
                    ctx.send(from, InstanceMsg::Nack { ballot, promised });
                }
                self.answer_if_decided(from, ctx);
                None
            }
            InstanceMsg::AcceptRequest { ballot, value } => {
                self.observe_ballot(ballot);
                if self.promised.is_none_or(|p| ballot >= p) {
                    self.promised = Some(ballot);
                    self.accepted = Some((ballot, value));
                    self.persist_acceptor(ctx);
                    ctx.send(from, InstanceMsg::Accepted { ballot });
                } else if let Some(promised) = self.promised {
                    ctx.send(from, InstanceMsg::Nack { ballot, promised });
                }
                self.answer_if_decided(from, ctx);
                None
            }
            InstanceMsg::Promise { ballot, accepted } => {
                if self.phase == Phase::Preparing && self.current_ballot == Some(ballot) {
                    self.promises.insert(from, accepted);
                    if self.promises.len() >= ctx.processes().majority() {
                        let inherited = self
                            .promises
                            .values()
                            .flatten()
                            .max_by_key(|(b, _)| *b)
                            .map(|(_, v)| v.clone());
                        let value = inherited.or_else(|| self.proposal.clone());
                        if let Some(value) = value {
                            self.chosen = Some(value.clone());
                            self.phase = Phase::Accepting;
                            self.accepts.clear();
                            ctx.multisend(InstanceMsg::AcceptRequest { ballot, value });
                        }
                    }
                }
                None
            }
            InstanceMsg::Accepted { ballot } => {
                if self.phase == Phase::Accepting && self.current_ballot == Some(ballot) {
                    self.accepts.insert(from);
                    if self.accepts.len() >= ctx.processes().majority() {
                        let value = self.chosen.clone().expect("accepting implies a chosen value");
                        return self.learn(value, ctx);
                    }
                }
                None
            }
            InstanceMsg::Nack { ballot, promised } => {
                self.observe_ballot(promised);
                if self.current_ballot == Some(ballot) && self.phase != Phase::Idle {
                    // Our ballot lost; back off and let the next tick start
                    // a higher one.
                    self.phase = Phase::Idle;
                    self.current_ballot = None;
                    self.promises.clear();
                    self.accepts.clear();
                }
                None
            }
            InstanceMsg::Decided { value } => self.learn(value, ctx),
            InstanceMsg::Query => {
                self.answer_if_decided(from, ctx);
                None
            }
        }
    }

    /// Periodic driver: retransmits, starts or restarts ballots when this
    /// process is the leader, and queries for missing decisions.  Returns a
    /// newly learned decision, if any (never produced here, but kept
    /// symmetric with [`ConsensusInstance::on_message`] for the caller).
    pub fn tick(
        &mut self,
        is_leader: bool,
        ctx: &mut dyn ActorContext<InstanceMsg<V>>,
    ) -> Option<V> {
        if self.decision.is_some() {
            return None;
        }
        if !self.has_proposal() {
            return None;
        }
        if is_leader {
            match self.phase {
                Phase::Idle => {
                    let ballot = Ballot::new(self.highest_ballot_number, ProcessId::new(0))
                        .next_for(ctx.me(), ctx.processes().len());
                    self.observe_ballot(ballot);
                    // Promise the ballot to ourselves synchronously — logged
                    // *before* the Prepare leaves — instead of waiting for
                    // the multisend's lossy self-delivery.  The persisted
                    // promise doubles as the coordinator's issued-ballot
                    // watermark: without it, a coordinator that crashes
                    // between issuing `Prepare` and receiving its own copy
                    // recovers with a stale `highest_ballot_number`, reissues
                    // the *same* ballot number around a possibly different
                    // value, and stale value-less `Accepted` acks from the
                    // previous incarnation then count toward the new value's
                    // majority — two decisions for one instance.
                    self.promised = Some(ballot);
                    self.persist_acceptor(ctx);
                    self.current_ballot = Some(ballot);
                    self.phase = Phase::Preparing;
                    self.promises.clear();
                    self.accepts.clear();
                    self.promises.insert(ctx.me(), self.accepted.clone());
                    ctx.multisend(InstanceMsg::Prepare { ballot });
                }
                Phase::Preparing => {
                    if let Some(ballot) = self.current_ballot {
                        ctx.multisend(InstanceMsg::Prepare { ballot });
                    }
                }
                Phase::Accepting => {
                    if let (Some(ballot), Some(value)) = (self.current_ballot, self.chosen.clone())
                    {
                        ctx.multisend(InstanceMsg::AcceptRequest { ballot, value });
                    }
                }
            }
        } else {
            // Not the leader: stop driving (a new leader will), but keep
            // asking whether a decision exists so we eventually learn it
            // over the fair-lossy links.
            ctx.multisend(InstanceMsg::Query);
        }
        None
    }

    // ------------------------------------------------------------------

    fn observe_ballot(&mut self, ballot: Ballot) {
        if ballot.number > self.highest_ballot_number {
            self.highest_ballot_number = ballot.number;
        }
    }

    fn persist_acceptor(&self, ctx: &mut dyn ActorContext<InstanceMsg<V>>) {
        if !self.persist {
            return;
        }
        // The promise and the accepted value take effect together, so they
        // are committed under a single durability barrier instead of two.
        let mut batch = WriteBatch::new();
        if let Some(promised) = self.promised {
            batch.store_value(&keys::consensus_promised(self.instance), &promised);
        }
        if let Some(accepted) = &self.accepted {
            batch.store_value(&keys::consensus_accepted(self.instance), accepted);
        }
        if !batch.is_empty() {
            let _ = ctx.storage().commit_batch(batch); // xlint:allow(B2) — staged view: this merges into the step batch; the single barrier is still paid in StepContext::finish
        }
    }

    fn answer_if_decided(&self, to: ProcessId, ctx: &mut dyn ActorContext<InstanceMsg<V>>) {
        if let Some(value) = &self.decision {
            ctx.send(to, InstanceMsg::Decided { value: value.clone() });
        }
    }

    fn learn(&mut self, value: V, ctx: &mut dyn ActorContext<InstanceMsg<V>>) -> Option<V> {
        if let Some(existing) = &self.decision {
            debug_assert_eq!(
                existing, &value,
                "uniform agreement violated: two different decisions for {:?}",
                self.instance
            );
            return None;
        }
        if self.persist {
            let _ = ctx
                .storage()
                .store_value(&keys::consensus_decided(self.instance), &value);
        }
        self.decision = Some(value.clone());
        self.phase = Phase::Idle;
        // Announce the decision once; peers that miss it will Query.
        ctx.multisend(InstanceMsg::Decided { value: value.clone() });
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_net::testkit::ScriptedContext;
    use abcast_types::SimDuration;

    type Ctx = ScriptedContext<InstanceMsg<u64>>;

    fn ctx_for(me: u32, n: usize) -> Ctx {
        ScriptedContext::new(ProcessId::new(me), n)
    }

    fn k() -> Round {
        Round::new(0)
    }

    fn b(n: u64, coord: u32) -> Ballot {
        Ballot::new(n, ProcessId::new(coord))
    }

    #[test]
    fn propose_logs_once_and_is_idempotent() {
        let mut ctx = ctx_for(0, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(42, &mut ctx);
        inst.propose(99, &mut ctx); // ignored: already proposed
        assert_eq!(inst.proposal(), Some(&42));

        // The proposal reached stable storage exactly once.
        let stored: Option<u64> = ctx
            .storage()
            .load_value(&keys::consensus_proposal(k()))
            .unwrap();
        assert_eq!(stored, Some(42));
        assert_eq!(ctx.storage().metrics().snapshot().store_ops, 1);
    }

    #[test]
    fn recovery_restores_proposal_promise_accept_and_decision() {
        let mut ctx = ctx_for(0, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(7, &mut ctx);
        inst.on_message(ProcessId::new(1), InstanceMsg::Prepare { ballot: b(1, 1) }, &mut ctx);
        inst.on_message(
            ProcessId::new(1),
            InstanceMsg::AcceptRequest { ballot: b(1, 1), value: 7 },
            &mut ctx,
        );
        inst.on_message(ProcessId::new(1), InstanceMsg::Decided { value: 7 }, &mut ctx);

        let recovered: ConsensusInstance<u64> =
            ConsensusInstance::recover(k(), true, &ctx.storage_handle()).unwrap();
        assert_eq!(recovered.proposal(), Some(&7));
        assert_eq!(recovered.decision(), Some(&7));
        assert!(recovered.is_decided());
    }

    #[test]
    fn acceptor_promises_and_reports_previous_accept() {
        let mut ctx = ctx_for(2, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);

        // First ballot: promise with no prior accept.
        inst.on_message(ProcessId::new(0), InstanceMsg::Prepare { ballot: b(3, 0) }, &mut ctx);
        assert!(matches!(
            ctx.sent.last(),
            Some((p, InstanceMsg::Promise { ballot, accepted: None })) if *p == ProcessId::new(0) && *ballot == b(3, 0)
        ));

        // Accept a value under that ballot.
        inst.on_message(
            ProcessId::new(0),
            InstanceMsg::AcceptRequest { ballot: b(3, 0), value: 11 },
            &mut ctx,
        );

        // A later ballot's prepare gets the accepted value echoed back.
        inst.on_message(ProcessId::new(1), InstanceMsg::Prepare { ballot: b(4, 1) }, &mut ctx);
        assert!(matches!(
            ctx.sent.last(),
            Some((p, InstanceMsg::Promise { ballot, accepted: Some((ab, 11)) }))
                if *p == ProcessId::new(1) && *ballot == b(4, 1) && *ab == b(3, 0)
        ));
    }

    #[test]
    fn accepting_persists_promise_and_value_under_one_barrier() {
        let mut ctx = ctx_for(2, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        let before = ctx.storage().metrics().snapshot();
        inst.on_message(
            ProcessId::new(0),
            InstanceMsg::AcceptRequest { ballot: b(1, 0), value: 11 },
            &mut ctx,
        );
        let delta = ctx.storage().metrics().snapshot().since(&before);
        assert_eq!(delta.store_ops, 2, "promise and accepted value are both logged");
        assert_eq!(delta.sync_ops, 1, "but they share one durability barrier");
    }

    #[test]
    fn acceptor_rejects_stale_ballots_with_nack() {
        let mut ctx = ctx_for(2, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.on_message(ProcessId::new(1), InstanceMsg::Prepare { ballot: b(5, 1) }, &mut ctx);
        ctx.clear_effects();

        inst.on_message(ProcessId::new(0), InstanceMsg::Prepare { ballot: b(2, 0) }, &mut ctx);
        assert!(matches!(
            ctx.sent.last(),
            Some((_, InstanceMsg::Nack { ballot, promised })) if *ballot == b(2, 0) && *promised == b(5, 1)
        ));

        ctx.clear_effects();
        inst.on_message(
            ProcessId::new(0),
            InstanceMsg::AcceptRequest { ballot: b(2, 0), value: 9 },
            &mut ctx,
        );
        assert!(matches!(
            ctx.sent.last(),
            Some((_, InstanceMsg::Nack { .. }))
        ));
    }

    #[test]
    fn leader_runs_both_phases_and_decides_with_a_majority() {
        let n = 3;
        let me = ProcessId::new(0);
        let mut ctx = ctx_for(0, n);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(5, &mut ctx);
        ctx.clear_effects();

        // Tick as leader: starts Prepare with a ballot coordinated by p0.
        inst.tick(true, &mut ctx);
        let ballot = match ctx.multisent.last() {
            Some(InstanceMsg::Prepare { ballot }) => *ballot,
            other => panic!("expected prepare, got {other:?}"),
        };
        assert_eq!(ballot.coordinator, me);

        // Majority of promises (self + p1) moves to the accept phase.
        inst.on_message(me, InstanceMsg::Promise { ballot, accepted: None }, &mut ctx);
        inst.on_message(
            ProcessId::new(1),
            InstanceMsg::Promise { ballot, accepted: None },
            &mut ctx,
        );
        assert!(matches!(
            ctx.multisent.last(),
            Some(InstanceMsg::AcceptRequest { value: 5, .. })
        ));

        // Majority of accepts decides and announces.
        let decided_by_first = inst.on_message(me, InstanceMsg::Accepted { ballot }, &mut ctx);
        assert_eq!(decided_by_first, None);
        let decided =
            inst.on_message(ProcessId::new(1), InstanceMsg::Accepted { ballot }, &mut ctx);
        assert_eq!(decided, Some(5));
        assert_eq!(inst.decision(), Some(&5));
        assert!(matches!(
            ctx.multisent.last(),
            Some(InstanceMsg::Decided { value: 5 })
        ));
    }

    #[test]
    fn leader_adopts_the_highest_previously_accepted_value() {
        let n = 5;
        let mut ctx = ctx_for(0, n);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(100, &mut ctx);
        inst.tick(true, &mut ctx);
        let ballot = match ctx.multisent.last() {
            Some(InstanceMsg::Prepare { ballot }) => *ballot,
            other => panic!("expected prepare, got {other:?}"),
        };
        ctx.clear_effects();

        // Promises report two different previously accepted values; the one
        // with the highest ballot must win (here: 55 at ballot 4).
        inst.on_message(
            ProcessId::new(1),
            InstanceMsg::Promise { ballot, accepted: Some((b(2, 2), 33)) },
            &mut ctx,
        );
        inst.on_message(
            ProcessId::new(2),
            InstanceMsg::Promise { ballot, accepted: Some((b(4, 4), 55)) },
            &mut ctx,
        );
        inst.on_message(ProcessId::new(3), InstanceMsg::Promise { ballot, accepted: None }, &mut ctx);
        assert!(matches!(
            ctx.multisent.last(),
            Some(InstanceMsg::AcceptRequest { value: 55, .. })
        ));
    }

    #[test]
    fn nack_makes_the_leader_retry_with_a_higher_ballot() {
        let mut ctx = ctx_for(0, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(1, &mut ctx);
        inst.tick(true, &mut ctx);
        let first_ballot = match ctx.multisent.last() {
            Some(InstanceMsg::Prepare { ballot }) => *ballot,
            other => panic!("expected prepare, got {other:?}"),
        };
        inst.on_message(
            ProcessId::new(1),
            InstanceMsg::Nack { ballot: first_ballot, promised: b(10, 1) },
            &mut ctx,
        );
        ctx.clear_effects();
        inst.tick(true, &mut ctx);
        let second_ballot = match ctx.multisent.last() {
            Some(InstanceMsg::Prepare { ballot }) => *ballot,
            other => panic!("expected prepare, got {other:?}"),
        };
        assert!(second_ballot.number > 10);
        assert_eq!(second_ballot.coordinator, ProcessId::new(0));
    }

    #[test]
    fn decision_is_answered_to_queries_and_never_changes() {
        let mut ctx = ctx_for(1, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        let learned =
            inst.on_message(ProcessId::new(0), InstanceMsg::Decided { value: 8 }, &mut ctx);
        assert_eq!(learned, Some(8));
        // Learning the same decision again returns None (not "newly decided").
        let again =
            inst.on_message(ProcessId::new(2), InstanceMsg::Decided { value: 8 }, &mut ctx);
        assert_eq!(again, None);

        ctx.clear_effects();
        inst.on_message(ProcessId::new(2), InstanceMsg::Query, &mut ctx);
        assert!(matches!(
            ctx.sent.last(),
            Some((p, InstanceMsg::Decided { value: 8 })) if *p == ProcessId::new(2)
        ));
    }

    #[test]
    fn non_leader_queries_instead_of_driving() {
        let mut ctx = ctx_for(2, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(4, &mut ctx);
        ctx.clear_effects();
        inst.tick(false, &mut ctx);
        assert!(matches!(ctx.multisent.last(), Some(InstanceMsg::Query)));
        // A decided instance stays quiet on ticks.
        inst.on_message(ProcessId::new(0), InstanceMsg::Decided { value: 4 }, &mut ctx);
        ctx.clear_effects();
        inst.tick(false, &mut ctx);
        inst.tick(true, &mut ctx);
        assert!(ctx.multisent.is_empty() && ctx.sent.is_empty());
    }

    #[test]
    fn crash_stop_mode_never_touches_storage() {
        let mut ctx = ctx_for(0, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), false);
        inst.propose(3, &mut ctx);
        inst.on_message(ProcessId::new(1), InstanceMsg::Prepare { ballot: b(1, 1) }, &mut ctx);
        inst.on_message(
            ProcessId::new(1),
            InstanceMsg::AcceptRequest { ballot: b(1, 1), value: 3 },
            &mut ctx,
        );
        inst.on_message(ProcessId::new(1), InstanceMsg::Decided { value: 3 }, &mut ctx);
        assert_eq!(ctx.storage().metrics().write_ops(), 0);
    }

    #[test]
    fn issued_ballot_survives_recovery_and_is_never_reissued() {
        // Fuzz regression (sim_fuzz seed 88 family): a coordinator that
        // crashed between multisending `Prepare` and receiving its own
        // (fair-lossy) copy used to recover with a stale ballot watermark
        // and reissue the *same* ballot number, letting stale `Accepted`
        // acks from its previous incarnation count toward a different
        // value's majority.  The synchronous self-promise at issuance is
        // the durable watermark; recovery must start strictly above it.
        let mut ctx = ctx_for(0, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(1, &mut ctx);
        inst.tick(true, &mut ctx);
        let first = match ctx.multisent.last() {
            Some(InstanceMsg::Prepare { ballot }) => *ballot,
            other => panic!("expected prepare, got {other:?}"),
        };

        // Crash now: no copy of the Prepare was ever delivered back, so
        // the persisted self-promise is the only trace of the ballot.
        let mut recovered: ConsensusInstance<u64> =
            ConsensusInstance::recover(k(), true, &ctx.storage_handle()).unwrap();
        assert_eq!(recovered.proposal(), Some(&1));
        ctx.clear_effects();
        recovered.tick(true, &mut ctx);
        let second = match ctx.multisent.last() {
            Some(InstanceMsg::Prepare { ballot }) => *ballot,
            other => panic!("expected prepare, got {other:?}"),
        };
        assert!(
            second.number > first.number,
            "recovered coordinator reissued ballot {first:?} (got {second:?})"
        );
    }

    #[test]
    fn ticks_retransmit_the_current_phase() {
        let mut ctx = ctx_for(0, 3);
        let mut inst: ConsensusInstance<u64> = ConsensusInstance::new(k(), true);
        inst.propose(2, &mut ctx);
        inst.tick(true, &mut ctx);
        ctx.advance(SimDuration::from_millis(40));
        ctx.clear_effects();
        // Still preparing: the prepare is re-multisent.
        inst.tick(true, &mut ctx);
        assert!(matches!(ctx.multisent.last(), Some(InstanceMsg::Prepare { .. })));
    }
}
