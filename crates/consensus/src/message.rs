//! Wire messages of the consensus substrate.
//!
//! One [`InstanceMsg`] drives a single consensus instance (one ballot-based
//! single-decree agreement); [`ConsensusMsg`] tags it with the instance
//! number and multiplexes the failure-detector traffic, so the whole
//! substrate speaks a single message type that the atomic broadcast layer
//! can wrap.

use abcast_fd::FdMessage;
use abcast_types::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use abcast_types::{Ballot, Round};

/// Protocol messages of one consensus instance.
///
/// The protocol is the classic two-phase ballot protocol (Synod) adapted to
/// the crash-recovery model: acceptors persist their promises and accepts
/// before answering, proposers persist their proposal before their first
/// message (which is the log operation the paper counts, Section 4.3), and
/// decisions are persisted and re-announced on request so that recovering
/// processes can learn them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceMsg<V> {
    /// Phase 1a: the ballot coordinator asks acceptors to promise.
    Prepare {
        /// The ballot being started.
        ballot: Ballot,
    },
    /// Phase 1b: an acceptor promises not to accept lower ballots and
    /// reports its most recently accepted value, if any.
    Promise {
        /// The ballot being promised.
        ballot: Ballot,
        /// The acceptor's last accepted `(ballot, value)`, if any.
        accepted: Option<(Ballot, V)>,
    },
    /// Phase 2a: the coordinator asks acceptors to accept `value` under
    /// `ballot`.
    AcceptRequest {
        /// The ballot carrying the value.
        ballot: Ballot,
        /// The value to accept.
        value: V,
    },
    /// Phase 2b: an acceptor accepted the value of `ballot`.
    Accepted {
        /// The ballot whose value was accepted.
        ballot: Ballot,
    },
    /// An acceptor rejects `ballot` because it already promised
    /// `promised > ballot`; lets the coordinator move to a higher ballot
    /// immediately.
    Nack {
        /// The rejected ballot.
        ballot: Ballot,
        /// The ballot the acceptor is bound to.
        promised: Ballot,
    },
    /// The decision of this instance (sent by anyone who knows it).
    Decided {
        /// The decided value.
        value: V,
    },
    /// "If you know the decision of this instance, please tell me."
    /// Sent periodically by undecided participants; answered with
    /// [`InstanceMsg::Decided`].
    Query,
}

impl<V> InstanceMsg<V> {
    /// Short label used in traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            InstanceMsg::Prepare { .. } => "prepare",
            InstanceMsg::Promise { .. } => "promise",
            InstanceMsg::AcceptRequest { .. } => "accept-request",
            InstanceMsg::Accepted { .. } => "accepted",
            InstanceMsg::Nack { .. } => "nack",
            InstanceMsg::Decided { .. } => "decided",
            InstanceMsg::Query => "query",
        }
    }
}

/// Top-level message type of the consensus substrate.
#[derive(Clone, Debug, PartialEq)]
pub enum ConsensusMsg<V> {
    /// Failure-detector traffic (heartbeats).
    Fd(FdMessage),
    /// A message belonging to consensus instance `instance`.
    Instance {
        /// Which consensus instance (= broadcast round) this belongs to.
        instance: Round,
        /// The instance-level message.
        msg: InstanceMsg<V>,
    },
}

impl<V> ConsensusMsg<V> {
    /// Convenience constructor for an instance message.
    pub fn instance(instance: Round, msg: InstanceMsg<V>) -> Self {
        ConsensusMsg::Instance { instance, msg }
    }

    /// Short label used in traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            ConsensusMsg::Fd(_) => "fd",
            ConsensusMsg::Instance { msg, .. } => msg.kind(),
        }
    }
}

// Wire-frame tags of [`InstanceMsg`].
const TAG_PREPARE: u8 = 0;
const TAG_PROMISE: u8 = 1;
const TAG_ACCEPT_REQUEST: u8 = 2;
const TAG_ACCEPTED: u8 = 3;
const TAG_NACK: u8 = 4;
const TAG_DECIDED: u8 = 5;
const TAG_QUERY: u8 = 6;

impl<V: Encode> Encode for InstanceMsg<V> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            InstanceMsg::Prepare { ballot } => {
                enc.put_u8(TAG_PREPARE);
                ballot.encode(enc);
            }
            InstanceMsg::Promise { ballot, accepted } => {
                enc.put_u8(TAG_PROMISE);
                ballot.encode(enc);
                accepted.encode(enc);
            }
            InstanceMsg::AcceptRequest { ballot, value } => {
                enc.put_u8(TAG_ACCEPT_REQUEST);
                ballot.encode(enc);
                value.encode(enc);
            }
            InstanceMsg::Accepted { ballot } => {
                enc.put_u8(TAG_ACCEPTED);
                ballot.encode(enc);
            }
            InstanceMsg::Nack { ballot, promised } => {
                enc.put_u8(TAG_NACK);
                ballot.encode(enc);
                promised.encode(enc);
            }
            InstanceMsg::Decided { value } => {
                enc.put_u8(TAG_DECIDED);
                value.encode(enc);
            }
            InstanceMsg::Query => enc.put_u8(TAG_QUERY),
        }
    }
}

impl<V: Decode> Decode for InstanceMsg<V> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.take_u8()? {
            TAG_PREPARE => InstanceMsg::Prepare {
                ballot: Ballot::decode(dec)?,
            },
            TAG_PROMISE => InstanceMsg::Promise {
                ballot: Ballot::decode(dec)?,
                accepted: Option::<(Ballot, V)>::decode(dec)?,
            },
            TAG_ACCEPT_REQUEST => InstanceMsg::AcceptRequest {
                ballot: Ballot::decode(dec)?,
                value: V::decode(dec)?,
            },
            TAG_ACCEPTED => InstanceMsg::Accepted {
                ballot: Ballot::decode(dec)?,
            },
            TAG_NACK => InstanceMsg::Nack {
                ballot: Ballot::decode(dec)?,
                promised: Ballot::decode(dec)?,
            },
            TAG_DECIDED => InstanceMsg::Decided {
                value: V::decode(dec)?,
            },
            TAG_QUERY => InstanceMsg::Query,
            other => {
                return Err(DecodeError::invalid(format!(
                    "unknown InstanceMsg tag {other}"
                )))
            }
        })
    }
}

impl<V: Encode> Encode for ConsensusMsg<V> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            ConsensusMsg::Fd(fd) => {
                enc.put_u8(0);
                fd.encode(enc);
            }
            ConsensusMsg::Instance { instance, msg } => {
                enc.put_u8(1);
                instance.encode(enc);
                msg.encode(enc);
            }
        }
    }
}

impl<V: Decode> Decode for ConsensusMsg<V> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.take_u8()? {
            0 => ConsensusMsg::Fd(FdMessage::decode(dec)?),
            1 => ConsensusMsg::Instance {
                instance: Round::decode(dec)?,
                msg: InstanceMsg::decode(dec)?,
            },
            other => {
                return Err(DecodeError::invalid(format!(
                    "unknown ConsensusMsg tag {other}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_types::ProcessId;

    #[test]
    fn consensus_messages_round_trip_through_the_codec() {
        use abcast_types::codec::{from_bytes, to_bytes};
        let b = Ballot::new(3, ProcessId::new(1));
        let msgs: Vec<ConsensusMsg<Vec<u64>>> = vec![
            ConsensusMsg::Fd(FdMessage::Heartbeat { epoch: 9 }),
            ConsensusMsg::instance(Round::new(4), InstanceMsg::Prepare { ballot: b }),
            ConsensusMsg::instance(
                Round::new(4),
                InstanceMsg::Promise {
                    ballot: b,
                    accepted: Some((b, vec![1, 2, 3])),
                },
            ),
            ConsensusMsg::instance(
                Round::new(5),
                InstanceMsg::AcceptRequest {
                    ballot: b,
                    value: vec![7],
                },
            ),
            ConsensusMsg::instance(Round::new(5), InstanceMsg::Accepted { ballot: b }),
            ConsensusMsg::instance(
                Round::new(6),
                InstanceMsg::Nack {
                    ballot: b,
                    promised: Ballot::new(4, ProcessId::new(2)),
                },
            ),
            ConsensusMsg::instance(Round::new(6), InstanceMsg::Decided { value: vec![] }),
            ConsensusMsg::instance(Round::new(7), InstanceMsg::Query),
        ];
        for msg in msgs {
            let back: ConsensusMsg<Vec<u64>> = from_bytes(&to_bytes(&msg)).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn kinds_are_stable_labels() {
        let b = Ballot::new(1, ProcessId::new(0));
        assert_eq!(InstanceMsg::<u64>::Prepare { ballot: b }.kind(), "prepare");
        assert_eq!(
            InstanceMsg::<u64>::Promise {
                ballot: b,
                accepted: None
            }
            .kind(),
            "promise"
        );
        assert_eq!(
            InstanceMsg::AcceptRequest { ballot: b, value: 3u64 }.kind(),
            "accept-request"
        );
        assert_eq!(InstanceMsg::<u64>::Accepted { ballot: b }.kind(), "accepted");
        assert_eq!(
            InstanceMsg::<u64>::Nack {
                ballot: b,
                promised: b
            }
            .kind(),
            "nack"
        );
        assert_eq!(InstanceMsg::Decided { value: 1u64 }.kind(), "decided");
        assert_eq!(InstanceMsg::<u64>::Query.kind(), "query");
    }

    #[test]
    fn top_level_kinds() {
        let m: ConsensusMsg<u64> = ConsensusMsg::Fd(FdMessage::Heartbeat { epoch: 1 });
        assert_eq!(m.kind(), "fd");
        let m = ConsensusMsg::instance(Round::new(3), InstanceMsg::Decided { value: 5u64 });
        assert_eq!(m.kind(), "decided");
        assert!(matches!(
            m,
            ConsensusMsg::Instance { instance, .. } if instance == Round::new(3)
        ));
    }
}
