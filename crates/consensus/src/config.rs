//! Configuration of the consensus substrate.

use serde::{Deserialize, Serialize};

use abcast_fd::FdConfig;
use abcast_types::SimDuration;

/// Which failure model the consensus substrate is deployed in.
///
/// The paper's protocol targets the crash-recovery model, where every
/// acceptor-side state change must reach stable storage before it takes
/// effect.  The crash-stop mode exists for the baseline comparison of
/// experiment E7: when crashes are definitive there is nothing to recover,
/// so no logging is needed and the protocol degenerates to the classic
/// crash-stop consensus used by Chandra–Toueg's transformation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureModel {
    /// Processes may crash and recover; all critical state is logged.
    CrashRecovery,
    /// Crashes are definitive; no stable-storage logging is performed.
    CrashStop,
}

impl FailureModel {
    /// `true` when acceptor/proposer state must be persisted.
    pub fn persists(self) -> bool {
        matches!(self, FailureModel::CrashRecovery)
    }
}

/// Tunable parameters of the consensus substrate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConsensusConfig {
    /// Failure model (crash-recovery with logging, or crash-stop without).
    pub failure_model: FailureModel,
    /// Period of the driver tick: retransmissions, leader checks, decision
    /// queries.
    pub retransmit_period: SimDuration,
    /// Configuration of the embedded heartbeat failure detector.
    pub fd: FdConfig,
}

impl Default for ConsensusConfig {
    fn default() -> Self {
        ConsensusConfig {
            failure_model: FailureModel::CrashRecovery,
            retransmit_period: SimDuration::from_millis(40),
            fd: FdConfig::default(),
        }
    }
}

impl ConsensusConfig {
    /// Crash-recovery configuration (the paper's model).
    pub fn crash_recovery() -> Self {
        ConsensusConfig::default()
    }

    /// Crash-stop configuration (baseline for experiment E7).
    pub fn crash_stop() -> Self {
        ConsensusConfig {
            failure_model: FailureModel::CrashStop,
            ..ConsensusConfig::default()
        }
    }

    /// Returns this configuration with a different retransmission period.
    pub fn with_retransmit_period(mut self, period: SimDuration) -> Self {
        self.retransmit_period = period;
        self
    }

    /// Returns this configuration with a different failure-detector
    /// configuration.
    pub fn with_fd(mut self, fd: FdConfig) -> Self {
        self.fd = fd;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_recovery_persists_crash_stop_does_not() {
        assert!(FailureModel::CrashRecovery.persists());
        assert!(!FailureModel::CrashStop.persists());
        assert_eq!(
            ConsensusConfig::crash_recovery().failure_model,
            FailureModel::CrashRecovery
        );
        assert_eq!(
            ConsensusConfig::crash_stop().failure_model,
            FailureModel::CrashStop
        );
    }

    #[test]
    fn builders_apply() {
        let c = ConsensusConfig::default()
            .with_retransmit_period(SimDuration::from_millis(7))
            .with_fd(FdConfig {
                heartbeat_period: SimDuration::from_millis(3),
                ..FdConfig::default()
            });
        assert_eq!(c.retransmit_period, SimDuration::from_millis(7));
        assert_eq!(c.fd.heartbeat_period, SimDuration::from_millis(3));
    }
}
