//! Criterion bench for experiment E4 (batching and throughput, §5.4): time
//! to order a burst of messages under different maximum batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use abcast_bench::workload::run_load;
use abcast_core::ClusterConfig;
use abcast_types::{BatchingPolicy, ProtocolConfig, SimDuration};

fn bench_throughput(c: &mut Criterion) {
    let messages = 60usize;
    let mut group = c.benchmark_group("E4_throughput");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(messages as u64));

    let mut variants = vec![("wait_for_agreed".to_string(), ProtocolConfig::basic())];
    for max_batch in [1usize, 16, 128] {
        variants.push((
            format!("early_return_batch_{max_batch}"),
            ProtocolConfig::alternative().with_batching(BatchingPolicy::EarlyReturn { max_batch }),
        ));
    }

    for (label, protocol) in variants {
        group.bench_with_input(
            BenchmarkId::new("order_burst", label),
            &protocol,
            |b, protocol| {
                b.iter(|| {
                    let (_, result) = run_load(
                        ClusterConfig::basic(3).with_seed(4).with_protocol(protocol.clone()),
                        messages,
                        64,
                        SimDuration::from_micros(500),
                    );
                    assert!(result.all_delivered);
                    result.rounds
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
