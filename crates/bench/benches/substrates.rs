//! Micro-benchmarks of the substrates the protocol is built on: the binary
//! codec, the stable-storage backends and the consensus fast path.  These
//! are not paper experiments; they exist to catch performance regressions
//! in the layers every experiment depends on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use abcast_consensus::ConsensusConfig;
use abcast_core::{Cluster, ClusterConfig};
use abcast_storage::{InMemoryStorage, StableStorage, StorageKey, TypedStorageExt};
use abcast_types::codec::{from_bytes, to_bytes};
use abcast_types::{AppMessage, ProcessId, ProtocolConfig, SimDuration};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_codec");
    for payload in [16usize, 256, 4096] {
        let batch: Vec<AppMessage> = (0..32)
            .map(|i| AppMessage::from_parts(ProcessId::new(i % 5), i as u64, vec![7u8; payload]))
            .collect();
        group.throughput(Throughput::Bytes(to_bytes(&batch).len() as u64));
        group.bench_with_input(
            BenchmarkId::new("encode_batch_of_32", payload),
            &batch,
            |b, batch| b.iter(|| to_bytes(batch)),
        );
        let bytes = to_bytes(&batch);
        group.bench_with_input(
            BenchmarkId::new("decode_batch_of_32", payload),
            &bytes,
            |b, bytes| b.iter(|| from_bytes::<Vec<AppMessage>>(bytes).unwrap()),
        );
    }
    group.finish();
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_storage");
    group.bench_function("in_memory_store_1kB", |b| {
        let storage = InMemoryStorage::new();
        let key = StorageKey::new("slot");
        let value = vec![0u8; 1024];
        b.iter(|| storage.store(&key, &value).unwrap());
    });
    group.bench_function("in_memory_typed_round_trip", |b| {
        let storage = InMemoryStorage::new();
        let key = StorageKey::new("typed");
        let value: Vec<u64> = (0..128).collect();
        b.iter(|| {
            storage.store_value(&key, &value).unwrap();
            let back: Option<Vec<u64>> = storage.load_value(&key).unwrap();
            back
        });
    });
    group.finish();
}

fn bench_consensus_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_ordering_round");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("single_broadcast_end_to_end_3_processes", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(
                ClusterConfig::basic(3)
                    .with_seed(11)
                    .with_protocol(ProtocolConfig::basic())
                    .with_consensus(ConsensusConfig::crash_recovery()),
            );
            let id = cluster.broadcast(ProcessId::new(0), vec![1u8; 64]).unwrap();
            let ok = cluster.run_until_delivered(
                &[ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)],
                &[id],
                cluster.now() + SimDuration::from_secs(30),
            );
            assert!(ok);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_codec, bench_storage, bench_consensus_round);
criterion_main!(benches);
