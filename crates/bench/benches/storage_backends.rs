//! Criterion bench for experiment E11 (group-commit WAL): wall-clock cost
//! of committing protocol-step-sized write batches against each on-disk
//! backend.  The interesting output is the `exp_storage` table and
//! `BENCH_storage.json`; this bench tracks the raw storage-layer cost so
//! regressions in the WAL framing or the file backend's handle caching
//! show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_storage::{FileStorage, StableStorage, StorageKey, WalStorage, WriteBatch};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("abcast-bench-storage-{tag}-{}", std::process::id()))
}

/// Commits `batches` three-operation batches (one slot store, two log
/// appends — the shape of a busy protocol step) against `storage`.
fn drive(storage: &dyn StableStorage, batches: usize) {
    let slot = StorageKey::new("abcast/agreed");
    let log = StorageKey::new("abcast/agreed/delta");
    for i in 0..batches {
        let mut batch = WriteBatch::new();
        batch.store(&slot, &(i as u64).to_le_bytes());
        batch.append(&log, &[i as u8; 48]);
        batch.append(&log, &[i as u8; 16]);
        storage.commit_batch(batch).expect("commit succeeds");
    }
}

fn bench_storage_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_storage_backends");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    const BATCHES: usize = 50;

    group.bench_function(BenchmarkId::new("commit_50_step_batches", "file"), |b| {
        b.iter(|| {
            let dir = temp_dir("file");
            let _ = std::fs::remove_dir_all(&dir);
            let storage = FileStorage::open(&dir).expect("file storage opens");
            drive(&storage, BATCHES);
            let ops = storage.metrics().snapshot().sync_ops;
            let _ = std::fs::remove_dir_all(&dir);
            ops
        });
    });

    group.bench_function(BenchmarkId::new("commit_50_step_batches", "wal"), |b| {
        b.iter(|| {
            let path = temp_dir("wal").with_extension("wal");
            let _ = std::fs::remove_file(&path);
            let storage = WalStorage::open(&path)
                .expect("wal storage opens")
                .with_group_window(8);
            drive(&storage, BATCHES);
            let ops = storage.metrics().snapshot().sync_ops;
            let _ = std::fs::remove_file(&path);
            ops
        });
    });

    group.finish();
}

criterion_group!(benches, bench_storage_backends);
criterion_main!(benches);
