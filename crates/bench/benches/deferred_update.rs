//! Criterion bench for experiment E9 (§6.2): certification throughput of
//! the deferred-update replicated database under low and high contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use abcast_core::ConsensusConfig;
use abcast_replication::{CertifyingDatabase, Replica, Transaction};
use abcast_sim::{SimConfig, Simulation};
use abcast_types::{ProcessId, ProtocolConfig, SimDuration, SimTime};

type DbReplica = Replica<CertifyingDatabase>;

fn certify_workload(keys: usize, transactions: usize) -> (u64, u64) {
    let mut sim = Simulation::new(SimConfig::lan(3).with_seed(9), |_p, _s| {
        DbReplica::new(ProtocolConfig::alternative(), ConsensusConfig::crash_recovery())
    });
    let mut rng = ChaCha8Rng::seed_from_u64(keys as u64);
    let mut ids = Vec::new();
    for txid in 0..transactions {
        let home = ProcessId::new(rng.gen_range(0..3u32));
        let read_key = format!("k{}", rng.gen_range(0..keys));
        let write_key = format!("k{}", rng.gen_range(0..keys));
        if let Some(id) = sim.with_actor_mut(home, |replica, ctx| {
            let (_, version) = replica.state().read(&read_key);
            let tx = Transaction::new(txid as u64)
                .read(read_key.clone(), version)
                .write(write_key.clone(), "v");
            replica.submit(&tx, ctx)
        }) {
            ids.push(id);
        }
        sim.run_for(SimDuration::from_millis(5));
    }
    let done = sim.run_until(SimTime::from_micros(300_000_000), |sim| {
        sim.processes().iter().all(|q| {
            sim.actor(q)
                .map(|r| ids.iter().all(|id| r.has_executed(*id)))
                .unwrap_or(false)
        })
    });
    assert!(done);
    let db = sim.actor(ProcessId::new(0)).unwrap().state().clone();
    (db.committed(), db.aborted())
}

fn bench_deferred_update(c: &mut Criterion) {
    let transactions = 30usize;
    let mut group = c.benchmark_group("E9_deferred_update");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(transactions as u64));
    for keys in [2usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("certify_30_transactions_keyspace", keys),
            &keys,
            |b, &keys| {
                b.iter(|| certify_workload(keys, transactions));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deferred_update);
criterion_main!(benches);
