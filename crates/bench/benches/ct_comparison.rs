//! Criterion bench for experiment E7 (§5.6): the crash-recovery protocol vs
//! the crash-stop (Chandra–Toueg style) baseline on a crash-free run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_bench::workload::run_load;
use abcast_core::{ClusterConfig, ConsensusConfig};
use abcast_types::{ProtocolConfig, SimDuration};

fn bench_ct_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_ct_comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let variants = [
        ("crash_recovery", ConsensusConfig::crash_recovery()),
        ("crash_stop_baseline", ConsensusConfig::crash_stop()),
    ];
    for (label, consensus) in variants {
        group.bench_with_input(
            BenchmarkId::new("order_40_messages", label),
            &consensus,
            |b, consensus| {
                b.iter(|| {
                    let (_, result) = run_load(
                        ClusterConfig::basic(3)
                            .with_seed(7)
                            .with_protocol(ProtocolConfig::basic())
                            .with_consensus(consensus.clone()),
                        40,
                        32,
                        SimDuration::from_millis(2),
                    );
                    assert!(result.all_delivered);
                    result.storage.write_ops()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ct_comparison);
criterion_main!(benches);
