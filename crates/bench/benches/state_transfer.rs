//! Criterion bench for experiment E3 (state transfer, §5.3): catch-up of a
//! process that missed 40 rounds, by replaying every missed consensus vs by
//! receiving a `state(k, Agreed)` message.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_core::{Cluster, ClusterConfig};
use abcast_types::{BatchingPolicy, ProcessId, ProtocolConfig, RecoveryPolicy, SimDuration};

fn cluster_with_lagging_process(protocol: ProtocolConfig, missed: usize) -> (Cluster, Vec<abcast_types::MsgId>) {
    let mut protocol = protocol;
    protocol.batching = BatchingPolicy::WaitForAgreed;
    let mut cluster = Cluster::new(ClusterConfig::basic(3).with_seed(3).with_protocol(protocol));
    let victim = ProcessId::new(2);
    cluster.sim_mut().crash_now(victim);
    let mut ids = Vec::new();
    for i in 0..missed {
        if let Some(id) = cluster.broadcast(ProcessId::new((i % 2) as u32), vec![i as u8; 16]) {
            ids.push(id);
        }
        cluster.run_for(SimDuration::from_millis(8));
    }
    let survivors = [ProcessId::new(0), ProcessId::new(1)];
    assert!(cluster.run_until_delivered(&survivors, &ids, cluster.now() + SimDuration::from_secs(60)));
    (cluster, ids)
}

fn bench_state_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_state_transfer");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let variants = [
        (
            "replay_every_missed_round",
            ProtocolConfig {
                recovery: RecoveryPolicy::ReplayConsensus,
                ..ProtocolConfig::alternative()
            },
        ),
        ("state_transfer_delta_4", ProtocolConfig::alternative().with_delta(4)),
    ];
    for (label, protocol) in variants {
        group.bench_with_input(
            BenchmarkId::new("catch_up_after_40_missed_rounds", label),
            &protocol,
            |b, protocol| {
                b.iter_batched(
                    || cluster_with_lagging_process(protocol.clone(), 40),
                    |(mut cluster, ids)| {
                        let victim = ProcessId::new(2);
                        cluster.sim_mut().recover_now(victim);
                        let ok = cluster.run_until_delivered(
                            &[victim],
                            &ids,
                            cluster.now() + SimDuration::from_secs(120),
                        );
                        assert!(ok);
                        cluster
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_state_transfer);
criterion_main!(benches);
