//! Criterion bench for experiment E6 (fault tolerance, §2.2/§4): time to
//! deliver a fixed load under increasing link loss, and with crash/recovery
//! churn injected.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_core::{Cluster, ClusterConfig};
use abcast_net::LinkConfig;
use abcast_sim::FaultPlan;
use abcast_types::{ProcessId, ProtocolConfig, SimDuration, SimTime};

fn deliver_under_faults(loss: f64, churn: bool) -> u64 {
    let link = LinkConfig::lan().with_loss(loss);
    let mut cluster = Cluster::new(
        ClusterConfig::basic(5)
            .with_seed(6)
            .with_link(link)
            .with_protocol(ProtocolConfig::alternative()),
    );
    if churn {
        let plan = FaultPlan::none().random_churn(
            [ProcessId::new(3), ProcessId::new(4)],
            7,
            SimDuration::from_millis(150),
            SimDuration::from_millis(500),
            SimDuration::from_millis(50),
            SimDuration::from_millis(200),
            SimTime::from_micros(1_500_000),
        );
        cluster.apply_faults(&plan);
    }
    let mut ids = Vec::new();
    for i in 0..20 {
        if let Some(id) = cluster.broadcast(ProcessId::new(i % 2), vec![i as u8; 32]) {
            ids.push(id);
        }
        cluster.run_for(SimDuration::from_millis(15));
    }
    let everyone: Vec<ProcessId> = cluster.processes().iter().collect();
    assert!(cluster.run_until_delivered(&everyone, &ids, cluster.now() + SimDuration::from_secs(120)));
    cluster.stats().events
}

fn bench_fault_tolerance(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_fault_tolerance");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for loss in [0.0, 0.1, 0.3] {
        group.bench_with_input(
            BenchmarkId::new("deliver_20_msgs_loss", format!("{loss}")),
            &loss,
            |b, &loss| b.iter(|| deliver_under_faults(loss, false)),
        );
    }
    group.bench_function("deliver_20_msgs_loss_0.1_with_churn", |b| {
        b.iter(|| deliver_under_faults(0.1, true))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_tolerance);
criterion_main!(benches);
