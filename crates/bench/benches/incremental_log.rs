//! Criterion bench for experiment E5 (incremental logging, §5.5): both the
//! storage-layer micro-benchmark (persisting a growing set with full
//! rewrites vs incremental appends) and the end-to-end protocol
//! configuration comparison.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_bench::workload::run_load;
use abcast_core::ClusterConfig;
use abcast_storage::{
    FullSetLogger, InMemoryStorage, IncrementalSetLogger, SetLogger, StableStorage, StorageKey,
};
use abcast_types::{ProtocolConfig, SimDuration};

fn bench_set_loggers(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_set_logger_micro");
    group.sample_size(20);
    for grows_to in [64usize, 512] {
        group.bench_with_input(
            BenchmarkId::new("full_rewrite", grows_to),
            &grows_to,
            |b, &n| {
                b.iter(|| {
                    let storage = InMemoryStorage::new();
                    let mut logger = FullSetLogger::new(StorageKey::new("s"));
                    let mut set = BTreeSet::new();
                    for i in 0..n as u64 {
                        set.insert(i);
                        logger.persist(&storage, &set).unwrap();
                    }
                    storage.metrics().bytes_written()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental", grows_to),
            &grows_to,
            |b, &n| {
                b.iter(|| {
                    let storage = InMemoryStorage::new();
                    let mut logger = IncrementalSetLogger::<u64>::new(StorageKey::new("s"));
                    let mut set = BTreeSet::new();
                    for i in 0..n as u64 {
                        set.insert(i);
                        logger.persist(&storage, &set).unwrap();
                    }
                    storage.metrics().bytes_written()
                });
            },
        );
    }
    group.finish();
}

fn bench_protocol_logging(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_protocol_logging");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, incremental) in [("full_value", false), ("incremental", true)] {
        group.bench_function(BenchmarkId::new("order_40_messages", label), |b| {
            b.iter(|| {
                let protocol =
                    ProtocolConfig::alternative().with_incremental_logging(incremental);
                let (_, result) = run_load(
                    ClusterConfig::basic(3).with_seed(5).with_protocol(protocol),
                    40,
                    64,
                    SimDuration::from_millis(2),
                );
                assert!(result.all_delivered);
                result.storage.bytes_written
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_set_loggers, bench_protocol_logging);
criterion_main!(benches);
