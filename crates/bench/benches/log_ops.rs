//! Criterion bench for experiment E1 (minimal logging, §4.3): time to order
//! a fixed batch of messages under each logging policy.  The interesting
//! output is the accompanying `exp_log_ops` table; this bench tracks the
//! wall-clock cost of the three configurations so regressions in the
//! logging path show up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_bench::workload::run_load;
use abcast_core::ClusterConfig;
use abcast_types::{ProtocolConfig, SimDuration};

fn bench_log_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_log_ops");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let variants = [
        ("basic", ProtocolConfig::basic()),
        ("alternative", ProtocolConfig::alternative()),
        ("naive", ProtocolConfig::naive()),
    ];
    for (label, protocol) in variants {
        group.bench_with_input(
            BenchmarkId::new("order_20_messages", label),
            &protocol,
            |b, protocol| {
                b.iter(|| {
                    let (_, result) = run_load(
                        ClusterConfig::basic(3).with_seed(1).with_protocol(protocol.clone()),
                        20,
                        32,
                        SimDuration::from_millis(2),
                    );
                    assert!(result.all_delivered);
                    result.storage.write_ops()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_log_ops);
criterion_main!(benches);
