//! Criterion bench for experiment E10 (§6.3): the pure quorum machinery —
//! reply combination and quorum membership checks — which sits on every
//! read path of the quorum-replication bridge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_replication::quorum::{combine_read_replies, QuorumConfig, ReadReply};
use abcast_types::ProcessId;

fn bench_quorum(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_quorum");
    for n in [5usize, 25, 101] {
        let config = QuorumConfig::uniform_majority(n);
        let replies: Vec<ReadReply<u64>> = (0..n)
            .map(|i| ReadReply {
                replica: ProcessId::new(i as u32),
                version: (i as u64 * 7) % 13,
                value: i as u64,
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::new("combine_read_replies", n),
            &replies,
            |b, replies| {
                b.iter(|| combine_read_replies(&config, replies));
            },
        );
        let repliers: Vec<ProcessId> = (0..n).map(|i| ProcessId::new(i as u32)).collect();
        group.bench_with_input(
            BenchmarkId::new("is_read_quorum", n),
            &repliers,
            |b, repliers| {
                b.iter(|| config.is_read_quorum(repliers));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_quorum);
criterion_main!(benches);
