//! Criterion bench for experiment E8 (§5.2): ordering a long stream with
//! and without application-level checkpoints, reporting the run time (the
//! footprint comparison lives in the `exp_log_growth` table).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_bench::workload::run_load;
use abcast_core::ClusterConfig;
use abcast_types::{ProtocolConfig, SimDuration};

fn bench_log_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_log_growth");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (label, app_checkpoints) in [("unbounded_log", false), ("application_checkpoints", true)] {
        group.bench_function(BenchmarkId::new("order_80_messages", label), |b| {
            b.iter(|| {
                let protocol = ProtocolConfig::alternative()
                    .with_application_checkpoints(app_checkpoints)
                    .with_checkpoint_period(SimDuration::from_millis(100));
                let (cluster, result) = run_load(
                    ClusterConfig::basic(3).with_seed(8).with_protocol(protocol),
                    80,
                    48,
                    SimDuration::from_millis(2),
                );
                assert!(result.all_delivered);
                cluster.sim().storage().total_footprint_bytes()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_log_growth);
criterion_main!(benches);
