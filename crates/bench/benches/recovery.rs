//! Criterion bench for experiment E2 (recovery cost, §5.1): crash and
//! recover a process after a warm-up load, with and without `(k, Agreed)`
//! checkpoints, and measure the time of the whole crash-recover-catch-up
//! cycle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use abcast_core::{Cluster, ClusterConfig};
use abcast_types::{BatchingPolicy, ProcessId, ProtocolConfig, SimDuration};

fn prepared_cluster(protocol: ProtocolConfig, rounds: usize) -> (Cluster, Vec<abcast_types::MsgId>) {
    let mut protocol = protocol;
    protocol.batching = BatchingPolicy::WaitForAgreed;
    let mut cluster = Cluster::new(ClusterConfig::basic(3).with_seed(2).with_protocol(protocol));
    let mut ids = Vec::new();
    for i in 0..rounds {
        if let Some(id) = cluster.broadcast(ProcessId::new((i % 2) as u32), vec![i as u8; 16]) {
            ids.push(id);
        }
        cluster.run_for(SimDuration::from_millis(8));
    }
    let everyone: Vec<ProcessId> = cluster.processes().iter().collect();
    assert!(cluster.run_until_delivered(&everyone, &ids, cluster.now() + SimDuration::from_secs(60)));
    (cluster, ids)
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("E2_recovery");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let variants = [
        ("replay_only", ProtocolConfig::basic()),
        (
            "checkpoint_50ms",
            ProtocolConfig::alternative().with_checkpoint_period(SimDuration::from_millis(50)),
        ),
    ];
    for (label, protocol) in variants {
        group.bench_with_input(
            BenchmarkId::new("crash_recover_catchup_after_30_rounds", label),
            &protocol,
            |b, protocol| {
                b.iter_batched(
                    || prepared_cluster(protocol.clone(), 30),
                    |(mut cluster, ids)| {
                        let victim = ProcessId::new(2);
                        cluster.sim_mut().crash_now(victim);
                        cluster.sim_mut().recover_now(victim);
                        let ok = cluster.run_until_delivered(
                            &[victim],
                            &ids,
                            cluster.now() + SimDuration::from_secs(60),
                        );
                        assert!(ok);
                        cluster
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
