//! Shared workload driver used by the experiments and the Criterion
//! benches.
//!
//! [`drive_load`] submits a stream of broadcasts into a [`Cluster`], waits
//! for cluster-wide delivery and reports throughput, latency and logging
//! cost — the measurements that most experiments start from.

use std::collections::BTreeMap;

use abcast_core::{Cluster, ClusterConfig};
use abcast_storage::StorageSnapshot;
use abcast_types::{MsgId, ProcessId, SimDuration, SimTime};

/// Outcome of one load run.
#[derive(Clone, Debug)]
pub struct LoadResult {
    /// Number of messages that were successfully A-broadcast.
    pub broadcast: usize,
    /// `true` if every process delivered every message before the deadline.
    pub all_delivered: bool,
    /// Virtual time at which the run finished (all delivered, or deadline).
    pub finished_at: SimTime,
    /// Mean latency from A-broadcast to local A-delivery at the sender, in
    /// milliseconds of virtual time (only over messages that were
    /// delivered).
    pub mean_latency_ms: f64,
    /// 99th-percentile of the same latency distribution.
    pub p99_latency_ms: f64,
    /// Throughput in messages per virtual second (delivered messages over
    /// the full run duration).
    pub throughput_msgs_per_sec: f64,
    /// Ordering rounds completed at process 0.
    pub rounds: u64,
    /// Cluster-wide stable-storage activity during the run.
    pub storage: StorageSnapshot,
    /// Messages sent over the transport during the run.
    pub transport_sent: u64,
}

/// Submits `count` broadcasts of `payload_size` bytes, spaced `gap` apart,
/// round-robin across all processes, then runs until every process delivers
/// everything (or `deadline_after_load` of extra virtual time elapses).
pub fn drive_load(
    cluster: &mut Cluster,
    count: usize,
    payload_size: usize,
    gap: SimDuration,
    deadline_after_load: SimDuration,
) -> LoadResult {
    let storage_before = cluster.storage_totals();
    let transport_before = cluster.sim().network_metrics().snapshot();
    let started = cluster.now();

    let mut submit_times: BTreeMap<MsgId, SimTime> = BTreeMap::new();
    let processes: Vec<ProcessId> = cluster.processes().iter().collect();
    for i in 0..count {
        let sender = processes[i % processes.len()];
        if !cluster.sim().is_up(sender) {
            cluster.run_for(gap);
            continue;
        }
        let payload = vec![(i % 251) as u8; payload_size];
        let at = cluster.now();
        if let Some(id) = cluster.broadcast(sender, payload) {
            submit_times.insert(id, at);
        }
        if !gap.is_zero() {
            cluster.run_for(gap);
        }
    }

    let deadline = cluster.now() + deadline_after_load;
    let all_delivered = cluster.run_until_all_delivered(deadline);
    let finished_at = cluster.now();

    // Latency: measured at the original sender, using its delivery log.
    let mut latencies_ms: Vec<f64> = Vec::new();
    for p in cluster.processes().iter() {
        if let Some(actor) = cluster.sim().actor(p) {
            for (time, id) in actor.delivery_log() {
                if let Some(submitted) = submit_times.get(id) {
                    if id.sender == p {
                        latencies_ms
                            .push(time.duration_since(*submitted).as_micros() as f64 / 1000.0);
                    }
                }
            }
        }
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let mean_latency_ms = if latencies_ms.is_empty() {
        0.0
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };
    let p99_latency_ms = latencies_ms
        .get(((latencies_ms.len() as f64 * 0.99) as usize).min(latencies_ms.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0.0);

    let elapsed = finished_at.duration_since(started).as_secs_f64().max(1e-9);
    let delivered = submit_times.len();
    let rounds = cluster
        .sim()
        .actor(ProcessId::new(0))
        .map(|a| a.metrics().rounds_completed)
        .unwrap_or(0);

    LoadResult {
        broadcast: submit_times.len(),
        all_delivered,
        finished_at,
        mean_latency_ms,
        p99_latency_ms,
        throughput_msgs_per_sec: delivered as f64 / elapsed,
        rounds,
        storage: cluster.storage_totals().since(&storage_before),
        transport_sent: cluster.sim().network_metrics().snapshot().since(&transport_before).sent,
    }
}

/// Outcome of one load run over the socket transport (wall-clock time).
#[derive(Clone, Debug)]
pub struct SocketLoadResult {
    /// Number of messages that were successfully A-broadcast.
    pub broadcast: usize,
    /// `true` if every process delivered every message before the deadline.
    pub all_delivered: bool,
    /// Wall-clock duration from the first broadcast until process 0 had
    /// delivered everything.
    pub elapsed: std::time::Duration,
    /// Mean A-broadcast → observed-A-delivery latency at process 0, in
    /// milliseconds of wall-clock time.  Observation is by polling, so
    /// each sample includes up to one poll interval of slack.
    pub mean_latency_ms: f64,
    /// Median of the same latency distribution.
    pub p50_latency_ms: f64,
    /// 99th percentile of the same latency distribution.
    pub p99_latency_ms: f64,
    /// Throughput in messages per wall-clock second.
    pub throughput_msgs_per_sec: f64,
}

/// Polls process `observer`'s delivery log, recording the first time each
/// identity is seen delivered.
fn poll_first_seen(
    cluster: &abcast_core::TcpCluster,
    observer: ProcessId,
    seen: &mut BTreeMap<MsgId, std::time::Instant>,
) {
    if let Some(ids) = cluster.delivery_log_ids(observer) {
        let now = std::time::Instant::now();
        for id in ids {
            seen.entry(id).or_insert(now);
        }
    }
}

/// The wall-clock twin of [`drive_load`]: submits `count` broadcasts of
/// `payload_size` bytes, spaced `gap` apart, round-robin across all
/// processes of a socket-backed cluster, then waits until every process
/// delivers everything (or `deadline_after_load` elapses).
///
/// Latency is measured at process 0 by polling its delivery log every few
/// hundred microseconds — good enough for loopback percentiles, and
/// documented as observational (each sample carries up to one poll
/// interval of slack).
pub fn drive_socket_load(
    cluster: &mut abcast_core::TcpCluster,
    count: usize,
    payload_size: usize,
    gap: std::time::Duration,
    deadline_after_load: std::time::Duration,
) -> SocketLoadResult {
    use std::time::{Duration, Instant};
    let processes: Vec<ProcessId> = cluster.processes().iter().collect();
    let observer = processes[0];
    let poll_interval = Duration::from_micros(200);

    let mut submit: BTreeMap<MsgId, Instant> = BTreeMap::new();
    let mut seen: BTreeMap<MsgId, Instant> = BTreeMap::new();
    let started = Instant::now();
    for i in 0..count {
        let sender = processes[i % processes.len()];
        let payload = vec![(i % 251) as u8; payload_size];
        if let Some(id) = cluster.broadcast(sender, payload) {
            submit.insert(id, Instant::now());
        }
        let until = Instant::now() + gap;
        loop {
            poll_first_seen(cluster, observer, &mut seen);
            if Instant::now() >= until {
                break;
            }
            std::thread::sleep(poll_interval);
        }
    }

    // Drain: first until the observer saw everything (latency samples),
    // then until every process has delivered (completeness).
    let deadline = Instant::now() + deadline_after_load;
    let mut observer_done = false;
    while Instant::now() < deadline {
        poll_first_seen(cluster, observer, &mut seen);
        if submit.keys().all(|id| seen.contains_key(id)) {
            observer_done = true;
            break;
        }
        std::thread::sleep(poll_interval);
    }
    let elapsed = started.elapsed();
    let ids: Vec<MsgId> = submit.keys().copied().collect();
    let all_delivered = observer_done
        && cluster.run_until_delivered(
            &processes,
            &ids,
            deadline.saturating_duration_since(Instant::now()),
        );

    let mut latencies_ms: Vec<f64> = submit
        .iter()
        .filter_map(|(id, at)| seen.get(id).map(|s| (*s - *at).as_secs_f64() * 1000.0))
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let percentile = |q: f64| -> f64 {
        latencies_ms
            .get(((latencies_ms.len() as f64 * q) as usize).min(latencies_ms.len().saturating_sub(1)))
            .copied()
            .unwrap_or(0.0)
    };
    let mean_latency_ms = if latencies_ms.is_empty() {
        0.0
    } else {
        latencies_ms.iter().sum::<f64>() / latencies_ms.len() as f64
    };

    SocketLoadResult {
        broadcast: submit.len(),
        all_delivered,
        elapsed,
        mean_latency_ms,
        p50_latency_ms: percentile(0.50),
        p99_latency_ms: percentile(0.99),
        throughput_msgs_per_sec: seen.len() as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Convenience: builds a cluster from `config` and immediately drives a
/// load through it.
pub fn run_load(
    config: ClusterConfig,
    count: usize,
    payload_size: usize,
    gap: SimDuration,
) -> (Cluster, LoadResult) {
    let mut cluster = Cluster::new(config);
    let result = drive_load(
        &mut cluster,
        count,
        payload_size,
        gap,
        SimDuration::from_secs(60),
    );
    (cluster, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_load_reports_consistent_numbers() {
        let (cluster, result) = run_load(
            ClusterConfig::basic(3).with_seed(4),
            10,
            16,
            SimDuration::from_millis(5),
        );
        assert_eq!(result.broadcast, 10);
        assert!(result.all_delivered, "load must be delivered");
        assert!(result.mean_latency_ms > 0.0);
        assert!(result.p99_latency_ms >= result.mean_latency_ms * 0.5);
        assert!(result.throughput_msgs_per_sec > 0.0);
        assert!(result.rounds >= 1);
        assert!(result.storage.write_ops() > 0);
        assert!(result.transport_sent > 0);
        cluster.assert_properties();
    }

    #[test]
    fn alternative_configuration_also_completes() {
        let (_cluster, result) = run_load(
            ClusterConfig::alternative(3).with_seed(5),
            8,
            8,
            SimDuration::from_millis(4),
        );
        assert!(result.all_delivered);
        assert_eq!(result.broadcast, 8);
    }
}
