//! E6 — Safety and liveness under message loss, crashes and recoveries
//! (Sections 2.2 and 4).
//!
//! The protocol must keep the four properties (Validity, Integrity, Total
//! Order, Termination) under fair-lossy links and crash/recovery churn, and
//! must stay live as long as the consensus is live.  We sweep the link loss
//! probability and inject random churn, then check the properties and
//! report how long delivery took.

use abcast_core::{Cluster, ClusterConfig};
use abcast_net::LinkConfig;
use abcast_sim::FaultPlan;
use abcast_types::{ProcessId, ProtocolConfig, SimDuration, SimTime};

use crate::report::{fmt_f64, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let messages = if quick { 20 } else { 120 };
    let loss_rates: &[f64] = if quick { &[0.0, 0.2] } else { &[0.0, 0.05, 0.2, 0.4] };
    let churn_settings: &[bool] = &[false, true];

    let mut table = Table::new(
        "E6",
        "safety and liveness under loss and crash/recovery churn (§2.2, §4)",
        &[
            "loss rate",
            "churn",
            "crashes",
            "messages",
            "all delivered",
            "property violations",
            "delivery span (ms)",
            "transport msgs / delivered msg",
        ],
    );

    for &loss in loss_rates {
        for &churn in churn_settings {
            let link = LinkConfig::lan()
                .with_loss(loss)
                .with_delay(SimDuration::from_micros(200), SimDuration::from_millis(4));
            let mut cluster = Cluster::new(
                ClusterConfig::basic(5)
                    .with_seed(606 + (loss * 100.0) as u64 + churn as u64)
                    .with_link(link)
                    .with_protocol(ProtocolConfig::alternative()),
            );

            let horizon = SimTime::from_micros(4_000_000);
            if churn {
                let plan = FaultPlan::none().random_churn(
                    [ProcessId::new(2), ProcessId::new(3), ProcessId::new(4)],
                    99,
                    SimDuration::from_millis(150),
                    SimDuration::from_millis(600),
                    SimDuration::from_millis(50),
                    SimDuration::from_millis(250),
                    horizon,
                );
                cluster.apply_faults(&plan);
            }

            let started = cluster.now();
            let mut ids = Vec::new();
            for i in 0..messages {
                // Only the two always-up processes submit, so that every
                // submitted message must be delivered (its sender is good).
                let sender = ProcessId::new((i % 2) as u32);
                if let Some(id) = cluster.broadcast(sender, vec![i as u8; 32]) {
                    ids.push(id);
                }
                cluster.run_for(SimDuration::from_millis(20));
            }

            let everyone: Vec<ProcessId> = cluster.processes().iter().collect();
            let deadline = horizon + SimDuration::from_secs(120);
            let all = cluster.run_until_delivered(&everyone, &ids, deadline);
            let span_ms = cluster.now().duration_since(started).as_micros() as f64 / 1000.0;

            let must: std::collections::BTreeSet<_> = ids.iter().copied().collect();
            let violations = cluster.check_properties(&everyone, &must);
            let transport = cluster.sim().network_metrics().snapshot();
            let delivered_msgs = (ids.len() * cluster.processes().len()) as f64;
            let crashes = cluster.stats().crashes;

            table.push_row(vec![
                fmt_f64(loss),
                if churn { "yes" } else { "no" }.to_string(),
                crashes.to_string(),
                ids.len().to_string(),
                if all { "yes" } else { "NO" }.to_string(),
                violations.len().to_string(),
                fmt_f64(span_ms),
                fmt_f64(transport.sent as f64 / delivered_msgs.max(1.0)),
            ]);
        }
    }
    table.note("safety (0 violations) must hold in every row; higher loss and churn only cost time and retransmissions");
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn no_property_violations_under_loss_and_churn() {
        let table = super::run(true);
        for row in &table.rows {
            assert_eq!(row[5], "0", "violations in row {row:?}");
            assert_eq!(row[4], "yes", "liveness lost in row {row:?}");
        }
    }
}
