//! E3 — State transfer for processes that lag far behind (Section 5.3).
//!
//! Claim: a process that has been down for a long period "may have missed
//! many Consensus and may require a long time to catch up"; having an
//! up-to-date process ship its `(k, Agreed)` state lets it skip the missed
//! instances.  We keep a process down while `D` rounds are decided and
//! measure its catch-up time and how many rounds it skipped, for several Δ
//! thresholds and for the replay-only basic protocol.

use abcast_core::{Cluster, ClusterConfig};
use abcast_types::{ProcessId, ProtocolConfig, RecoveryPolicy, SimDuration};

use crate::report::{fmt_f64, Table};

struct Variant {
    label: &'static str,
    protocol: ProtocolConfig,
}

fn variants() -> Vec<Variant> {
    let base = ProtocolConfig::alternative();
    vec![
        Variant {
            label: "replay only (no state transfer)",
            protocol: ProtocolConfig {
                recovery: RecoveryPolicy::ReplayConsensus,
                ..base.clone()
            },
        },
        Variant {
            label: "state transfer, delta = 4",
            protocol: base.clone().with_delta(4),
        },
        Variant {
            label: "state transfer, delta = 16",
            protocol: base.clone().with_delta(16),
        },
        Variant {
            label: "state transfer, delta = 64",
            protocol: base.with_delta(64),
        },
    ]
}

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let downtimes: &[usize] = if quick { &[40] } else { &[30, 100, 300] };
    let mut table = Table::new(
        "E3",
        "catch-up after a long outage: replay vs state transfer (§5.3)",
        &[
            "rounds missed",
            "variant",
            "catch-up time (ms)",
            "rounds skipped via state",
            "state transfers applied",
        ],
    );

    for &missed in downtimes {
        for variant in &variants() {
            let mut protocol = variant.protocol.clone();
            protocol.batching = abcast_types::BatchingPolicy::WaitForAgreed;
            let mut cluster = Cluster::new(
                ClusterConfig::basic(3)
                    .with_seed(303)
                    .with_protocol(protocol),
            );
            let victim = ProcessId::new(2);

            // Take the victim down, then decide `missed` rounds without it.
            cluster.sim_mut().crash_now(victim);
            let mut ids = Vec::new();
            for i in 0..missed {
                if let Some(id) =
                    cluster.broadcast(ProcessId::new((i % 2) as u32), vec![i as u8; 16])
                {
                    ids.push(id);
                }
                cluster.run_for(SimDuration::from_millis(8));
            }
            let survivors = [ProcessId::new(0), ProcessId::new(1)];
            assert!(
                cluster.run_until_delivered(
                    &survivors,
                    &ids,
                    cluster.now() + SimDuration::from_secs(120)
                ),
                "survivors must deliver the load"
            );

            // Bring the victim back and measure its catch-up.
            cluster.sim_mut().recover_now(victim);
            let recovery_started = cluster.now();
            let caught_up = cluster.run_until_delivered(
                &[victim],
                &ids,
                recovery_started + SimDuration::from_secs(300),
            );
            assert!(caught_up, "victim must catch up eventually");
            let catch_up_ms = cluster
                .now()
                .duration_since(recovery_started)
                .as_micros() as f64
                / 1000.0;
            let metrics = cluster.sim().actor(victim).expect("up").metrics().clone();
            table.push_row(vec![
                missed.to_string(),
                variant.label.to_string(),
                fmt_f64(catch_up_ms),
                metrics.skipped_rounds.to_string(),
                metrics.state_transfers_applied.to_string(),
            ]);
        }
    }
    table.note(
        "with state transfer the catch-up time is roughly independent of the number of \
         missed rounds; with replay only it grows linearly (one re-run consensus per round)",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn state_transfer_skips_rounds_and_is_faster_than_replay() {
        let table = super::run(true);
        // Row 0 = replay only, row 1 = delta 4.
        let replay_ms: f64 = table.rows[0][2].parse().expect("numeric");
        let transfer_ms: f64 = table.rows[1][2].parse().expect("numeric");
        let skipped: u64 = table.rows[1][3].parse().expect("numeric");
        assert!(skipped > 0, "delta=4 must skip rounds via state transfer");
        assert!(
            transfer_ms <= replay_ms,
            "state transfer ({transfer_ms} ms) should not be slower than replay ({replay_ms} ms)"
        );
    }
}
