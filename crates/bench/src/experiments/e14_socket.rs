//! E14 — Real socket transport: delivered throughput and delivery latency
//! of a 3-process loopback TCP cluster, against the in-process E12 runs.
//!
//! PR 5 put a real `std::net` TCP transport behind the frame codec
//! (`abcast_net::tcp`): per-peer reconnecting connections, length-prefixed
//! frames written vectored and reassembled zero-copy.  This experiment
//! runs the same bounded-batch pipelined workload as E12 (`max_batch = 4`,
//! `W ∈ {1, 4, 8}`, both logging variants) over actual loopback sockets
//! and reports wall-clock throughput and observed p50/p99 delivery
//! latency, next to the E12 numbers for the same `(variant, W)` measured
//! under the simulator.
//!
//! The two columns are *not* directly comparable — E12 time is virtual and
//! its link model injects 2–5 ms of delay per hop, while loopback RTT is
//! tens of microseconds — but carrying both in one baseline keeps the
//! socket path honest: the cluster must still deliver everything, drop
//! nothing on a healthy stream (`decode_failures = 0`, `torn_frames = 0`)
//! and scale with `W` on real sockets too.  The `exp_socket` binary emits
//! `BENCH_socket.json` so the repository carries the socket-transport
//! baseline.

use std::fmt::Write as _;
use std::time::Duration;

use abcast_core::{ClusterConfig, TcpCluster};
use abcast_types::{BatchingPolicy, ProtocolConfig};

use crate::experiments::e12_pipeline;
use crate::report::{fmt_f64, Table};
use crate::workload::drive_socket_load;

/// Processes in every measured cluster.
const PROCESSES: usize = 3;
/// Messages proposed to one consensus instance — kept small so the round
/// rate, not the batch size, carries the load (same as E12).
const MAX_BATCH: usize = 4;

/// One measured variant × pipeline-depth combination over sockets.
#[derive(Clone, Debug)]
pub struct SocketRow {
    /// Protocol variant label (`basic` or `alternative`).
    pub variant: &'static str,
    /// Pipeline depth `W`.
    pub depth: u64,
    /// Messages delivered at every process.
    pub messages: usize,
    /// Delivered messages per wall-clock second over loopback TCP.
    pub throughput_msgs_per_sec: f64,
    /// Mean observed A-broadcast → A-deliver latency at process 0 (ms).
    pub mean_latency_ms: f64,
    /// Median observed latency (ms).
    pub p50_latency_ms: f64,
    /// 99th-percentile observed latency (ms).
    pub p99_latency_ms: f64,
    /// Frames fully written to connected streams during the run.
    pub frames_sent: u64,
    /// Frames reassembled out of the streams during the run.
    pub frames_received: u64,
    /// Frames lost to the fair-lossy stream (0 on a healthy loopback run).
    pub frames_dropped: u64,
    /// Partial frames discarded at connection teardown (0 when healthy).
    pub torn_frames: u64,
    /// E12 throughput for the same `(variant, W)` under the simulator
    /// (virtual time, 2–5 ms link), for side-by-side reading.
    pub inproc_throughput_msgs_per_sec: f64,
    /// E12 mean latency for the same `(variant, W)` (virtual ms).
    pub inproc_mean_latency_ms: f64,
}

/// The depth sweep: `{1, 4}` in quick mode, `{1, 4, 8}` in full mode.
pub fn depths(quick: bool) -> &'static [u64] {
    if quick {
        &[1, 4]
    } else {
        &[1, 4, 8]
    }
}

fn protocol_for(variant: &str, depth: u64) -> ProtocolConfig {
    let base = match variant {
        "basic" => ProtocolConfig::basic(),
        _ => ProtocolConfig::alternative(),
    };
    base.with_batching(BatchingPolicy::EarlyReturn { max_batch: MAX_BATCH })
        .with_pipeline_depth(depth)
}

/// Runs the measurement matrix over loopback TCP and returns one row per
/// combination, each carrying its in-process E12 twin for comparison.
pub fn run_rows(quick: bool) -> Vec<SocketRow> {
    let messages = if quick { 24 } else { 96 };
    let e12_rows = e12_pipeline::run_rows(quick);
    let e12_lookup = |variant: &str, depth: u64| {
        e12_rows
            .iter()
            .find(|r| r.variant == variant && r.depth == depth)
            .map(|r| (r.throughput_msgs_per_sec, r.mean_latency_ms))
            .unwrap_or((0.0, 0.0))
    };

    let mut rows = Vec::new();
    for variant in ["basic", "alternative"] {
        for &depth in depths(quick) {
            let config = ClusterConfig::basic(PROCESSES)
                .with_seed(1401)
                .with_protocol(protocol_for(variant, depth));
            let mut cluster =
                TcpCluster::new(config).expect("loopback listeners must bind");
            let result = drive_socket_load(
                &mut cluster,
                messages,
                32,
                Duration::from_micros(500),
                Duration::from_secs(60),
            );
            assert!(
                result.all_delivered,
                "E14 load must complete over sockets (variant {variant}, W = {depth})"
            );
            assert_eq!(
                cluster.decode_failures(),
                0,
                "healthy loopback streams never produce undecodable frames"
            );
            let tcp = cluster.runtime().tcp_metrics().snapshot();
            cluster.shutdown();
            let (inproc_throughput, inproc_latency) = e12_lookup(variant, depth);
            rows.push(SocketRow {
                variant,
                depth,
                messages,
                throughput_msgs_per_sec: result.throughput_msgs_per_sec,
                mean_latency_ms: result.mean_latency_ms,
                p50_latency_ms: result.p50_latency_ms,
                p99_latency_ms: result.p99_latency_ms,
                frames_sent: tcp.frames_sent,
                frames_received: tcp.frames_received,
                frames_dropped: tcp.frames_dropped,
                torn_frames: tcp.torn_frames,
                inproc_throughput_msgs_per_sec: inproc_throughput,
                inproc_mean_latency_ms: inproc_latency,
            });
        }
    }
    rows
}

/// Runs the experiment and renders its table.
pub fn run(quick: bool) -> Table {
    table_from_rows(&run_rows(quick))
}

/// Renders measured rows as the E14 report table.
pub fn table_from_rows(rows: &[SocketRow]) -> Table {
    let mut table = Table::new(
        "E14",
        "socket transport: loopback TCP throughput and latency vs pipeline depth W",
        &[
            "variant",
            "W",
            "messages",
            "tcp msgs/s",
            "p50 (ms)",
            "p99 (ms)",
            "frames sent",
            "frames dropped",
            "E12 msgs/s (sim)",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.variant.to_string(),
            row.depth.to_string(),
            row.messages.to_string(),
            fmt_f64(row.throughput_msgs_per_sec),
            fmt_f64(row.p50_latency_ms),
            fmt_f64(row.p99_latency_ms),
            row.frames_sent.to_string(),
            row.frames_dropped.to_string(),
            fmt_f64(row.inproc_throughput_msgs_per_sec),
        ]);
    }
    table.note(
        "tcp columns are wall-clock over real loopback sockets; E12 columns are \
         virtual time under the simulator's 2-5 ms link — side-by-side for context, \
         not an apples-to-apples race",
    );
    table.note(
        "latency is observed by polling process 0's delivery log (~0.2 ms slack \
         per sample); healthy runs must show zero drops and zero torn frames",
    );
    table
}

/// Serializes the rows as the `BENCH_socket.json` baseline.
pub fn to_json(rows: &[SocketRow], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"E14\",");
    let _ = writeln!(
        out,
        "  \"title\": \"loopback TCP socket transport: delivered msgs/sec and p50/p99 latency vs pipeline depth W\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"processes\": {PROCESSES},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(
        out,
        "  \"note\": \"tcp_* fields are wall-clock over real sockets; inproc_* fields replay the same (variant, W) under the E12 simulator with its 2-5 ms link model\","
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"variant\": \"{}\", \"pipeline_depth\": {}, \"messages\": {}, \
             \"tcp_throughput_msgs_per_sec\": {}, \"tcp_mean_latency_ms\": {}, \
             \"tcp_p50_latency_ms\": {}, \"tcp_p99_latency_ms\": {}, \
             \"frames_sent\": {}, \"frames_received\": {}, \"frames_dropped\": {}, \
             \"torn_frames\": {}, \"inproc_throughput_msgs_per_sec\": {}, \
             \"inproc_mean_latency_ms\": {}}}",
            row.variant,
            row.depth,
            row.messages,
            fmt_f64(row.throughput_msgs_per_sec),
            fmt_f64(row.mean_latency_ms),
            fmt_f64(row.p50_latency_ms),
            fmt_f64(row.p99_latency_ms),
            row.frames_sent,
            row.frames_received,
            row.frames_dropped,
            row.torn_frames,
            fmt_f64(row.inproc_throughput_msgs_per_sec),
            fmt_f64(row.inproc_mean_latency_ms),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_experiment_completes_and_reports_clean_streams() {
        let rows = run_rows(true);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.throughput_msgs_per_sec > 0.0, "{row:?}");
            assert!(row.p99_latency_ms >= row.p50_latency_ms, "{row:?}");
            assert!(row.frames_sent > 0 && row.frames_received > 0, "{row:?}");
            assert_eq!(row.torn_frames, 0, "healthy run tore a frame: {row:?}");
            assert!(
                row.inproc_throughput_msgs_per_sec > 0.0,
                "the E12 twin must be carried: {row:?}"
            );
        }
        let table = table_from_rows(&rows);
        assert_eq!(table.len(), 4);
        let json = to_json(&rows, true);
        assert!(json.contains("\"experiment\": \"E14\""));
        assert_eq!(json.matches("\"pipeline_depth\"").count(), 4);
    }
}
