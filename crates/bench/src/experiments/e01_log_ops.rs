//! E1 — Minimal logging (Section 4.3).
//!
//! Claim: "Atomic Broadcast can be implemented without requiring any
//! additional log operations in excess of those required by the
//! Consensus."  The basic protocol's only write is the proposal logged by
//! the consensus substrate, so its per-message logging cost equals the
//! consensus cost; the alternative protocol pays a bounded extra for its
//! checkpoints and `Unordered` logging; a naive log-everything strawman
//! pays far more.

use abcast_core::ClusterConfig;
use abcast_types::{ProtocolConfig, SimDuration};

use crate::report::{fmt_f64, Table};
use crate::workload::run_load;

/// One measured configuration.
struct Variant {
    label: &'static str,
    protocol: ProtocolConfig,
}

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let messages = if quick { 30 } else { 200 };
    let sizes: &[usize] = if quick { &[3] } else { &[3, 5, 7] };
    let variants = [
        Variant {
            label: "basic (minimal logging, §4)",
            protocol: ProtocolConfig::basic(),
        },
        Variant {
            label: "alternative (checkpointing, §5)",
            protocol: ProtocolConfig::alternative(),
        },
        Variant {
            label: "naive (log everything)",
            protocol: ProtocolConfig::naive(),
        },
    ];

    let mut table = Table::new(
        "E1",
        "stable-storage log operations per A-delivered message (§4.3)",
        &[
            "processes",
            "variant",
            "messages",
            "rounds",
            "write ops",
            "ops / msg / process",
            "bytes / msg / process",
        ],
    );

    for &n in sizes {
        for variant in &variants {
            let (cluster, result) = run_load(
                ClusterConfig::basic(n)
                    .with_seed(101)
                    .with_protocol(variant.protocol.clone()),
                messages,
                32,
                SimDuration::from_millis(5),
            );
            assert!(result.all_delivered, "E1 load must complete");
            let per_msg_per_proc =
                result.storage.write_ops() as f64 / (messages as f64 * n as f64);
            let bytes_per_msg_per_proc =
                result.storage.bytes_written as f64 / (messages as f64 * n as f64);
            table.push_row(vec![
                n.to_string(),
                variant.label.to_string(),
                messages.to_string(),
                result.rounds.to_string(),
                result.storage.write_ops().to_string(),
                fmt_f64(per_msg_per_proc),
                fmt_f64(bytes_per_msg_per_proc),
            ]);
            drop(cluster);
        }
    }
    table.note(
        "basic = consensus-only cost (proposal + promise + accept + decision per round); \
         the transformation itself adds zero write operations",
    );
    table.note("alternative adds periodic (k, Agreed) checkpoints and Unordered logging");
    table.note("naive logs every variable on every update and is an order of magnitude worse");
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn basic_logs_less_than_alternative_which_logs_less_than_naive() {
        let table = super::run(true);
        // Rows: [basic, alternative, naive] for n=3.
        let ops: Vec<f64> = table
            .rows
            .iter()
            .map(|row| row[5].parse::<f64>().expect("ops column is numeric"))
            .collect();
        assert_eq!(ops.len(), 3);
        assert!(
            ops[0] < ops[1],
            "basic ({}) must log less than alternative ({})",
            ops[0],
            ops[1]
        );
        assert!(
            ops[1] < ops[2],
            "alternative ({}) must log less than naive ({})",
            ops[1],
            ops[2]
        );
    }
}
