//! The experiment suite (E1–E16).  See the crate documentation and
//! `EXPERIMENTS.md` for the mapping from paper claims to experiments.

pub mod e01_log_ops;
pub mod e02_recovery;
pub mod e03_state_transfer;
pub mod e04_throughput;
pub mod e05_incremental;
pub mod e06_faults;
pub mod e07_ct_comparison;
pub mod e08_log_growth;
pub mod e09_deferred;
pub mod e10_quorum;
pub mod e11_storage;
pub mod e12_pipeline;
pub mod e13_codec;
pub mod e14_socket;
pub mod e15_cluster;
pub mod e16_wal;

use crate::report::Table;

/// Runs every experiment and returns their tables in order.
///
/// `quick` trims the parameter sweeps so the whole suite stays fast enough
/// for CI and for the Criterion benches; the full sweeps are used by the
/// `exp_*` binaries.
pub fn run_all(quick: bool) -> Vec<Table> {
    vec![
        e01_log_ops::run(quick),
        e02_recovery::run(quick),
        e03_state_transfer::run(quick),
        e04_throughput::run(quick),
        e05_incremental::run(quick),
        e06_faults::run(quick),
        e07_ct_comparison::run(quick),
        e08_log_growth::run(quick),
        e09_deferred::run(quick),
        e10_quorum::run(quick),
        e11_storage::run(quick),
        e12_pipeline::run(quick),
        e13_codec::run(quick),
        e14_socket::run(quick),
        e15_cluster::run(quick),
        e16_wal::run(quick),
    ]
}

#[cfg(test)]
mod tests {
    /// Smoke-test: every experiment runs in quick mode and produces a
    /// non-empty table.  (This doubles as an end-to-end regression test of
    /// the whole stack.)
    #[test]
    fn all_experiments_produce_tables_in_quick_mode() {
        let tables = super::run_all(true);
        assert_eq!(tables.len(), 16);
        for table in &tables {
            assert!(!table.is_empty(), "{} produced no rows", table.id);
            assert!(!table.columns.is_empty());
        }
    }
}
