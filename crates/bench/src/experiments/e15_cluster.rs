//! E15 — Cluster-size sweep over the event-loop socket transport:
//! delivered throughput, delivery latency, durability cost and OS-thread
//! footprint vs N.
//!
//! The paper's cost analysis treats cluster size abstractly — quorum
//! distance and per-round message complexity grow with N — and PR 9's
//! readiness-based transport (one poller thread owning every socket)
//! makes the regime measurable on real sockets: a cluster of N processes
//! now costs N + 1 OS threads instead of the O(N²) of
//! thread-per-connection, so sweeping N ∈ {3, 5, 7, 9} is a matter of
//! wall-clock, not thread exhaustion.
//!
//! Each `(link, N, W)` cell runs the E12/E14 bounded-batch pipelined
//! workload (`max_batch = 4`) over loopback TCP and reports delivered
//! msgs/s, observed p50/p99 A-broadcast → A-deliver latency, durability
//! barriers per delivered message (summed `sync_ops` across every store)
//! and the OS threads the deployment added.  The sweep runs twice: on raw
//! loopback (tens of µs RTT — the consensus CPU path dominates) and on a
//! 2–5 ms [`LinkPolicy`] delayed link, the simulator's E12 link brought
//! to real sockets — which is the regime where pipeline depth W pays, so
//! the delayed rows must reproduce the E12-shaped W-scaling curve.  The
//! loopback `N = 3` row doubles as a cross-check against the committed
//! E14 baseline.  The `exp_cluster` binary emits `BENCH_cluster.json`.

use std::fmt::Write as _;
use std::time::Duration;

use abcast_core::{ClusterConfig, TcpCluster};
use abcast_net::tcp::{LinkPolicy, TcpConfig};
use abcast_storage::StorageRegistry;
use abcast_types::{BatchingPolicy, ProtocolConfig};

use crate::report::{fmt_f64, Table};
use crate::workload::drive_socket_load;

/// Messages proposed to one consensus instance (same as E12/E14).
const MAX_BATCH: usize = 4;
/// Seed for every measured deployment.
const SEED: u64 = 1501;

/// One measured `(link, N, W)` cell.
#[derive(Clone, Debug)]
pub struct ClusterRow {
    /// Link label: `loopback` or `delayed_2_5ms`.
    pub link: &'static str,
    /// Cluster size N.
    pub processes: usize,
    /// Pipeline depth W.
    pub depth: u64,
    /// Messages delivered at every process.
    pub messages: usize,
    /// Delivered messages per wall-clock second.
    pub throughput_msgs_per_sec: f64,
    /// Mean observed A-broadcast → A-deliver latency at process 0 (ms).
    pub mean_latency_ms: f64,
    /// Median observed latency (ms).
    pub p50_latency_ms: f64,
    /// 99th-percentile observed latency (ms).
    pub p99_latency_ms: f64,
    /// Durability barriers across all N stores over the whole run.
    pub fsyncs: u64,
    /// Durability barriers per delivered message (`fsyncs / messages`).
    pub fsyncs_per_msg: f64,
    /// OS threads the deployment added while running (workers + poller).
    pub os_threads: usize,
    /// Frames lost to the fair-lossy stream (0 on a healthy run).
    pub frames_dropped: u64,
    /// Partial frames discarded at teardown (0 on a healthy run).
    pub torn_frames: u64,
}

/// The cluster sizes swept: `{3, 5}` in quick mode, `{3, 5, 7, 9}` full.
pub fn sizes(quick: bool) -> &'static [usize] {
    if quick {
        &[3, 5]
    } else {
        &[3, 5, 7, 9]
    }
}

/// The pipeline depths swept (both modes — W is the money column).
pub fn depths() -> &'static [u64] {
    &[1, 4]
}

/// The two measured links: raw loopback and the simulator's 2–5 ms band.
fn links() -> [(&'static str, LinkPolicy); 2] {
    [
        ("loopback", LinkPolicy::direct()),
        (
            "delayed_2_5ms",
            LinkPolicy::delayed(Duration::from_millis(2), Duration::from_millis(5)),
        ),
    ]
}

fn protocol_for(depth: u64) -> ProtocolConfig {
    ProtocolConfig::basic()
        .with_batching(BatchingPolicy::EarlyReturn { max_batch: MAX_BATCH })
        .with_pipeline_depth(depth)
}

/// Live OS-thread count of this process, from `/proc/self/status`.
fn os_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find_map(|line| line.strip_prefix("Threads:"))
                .and_then(|v| v.trim().parse().ok())
        })
        .unwrap_or(0)
}

/// Runs one `(link, N, W)` cell and returns its row.
fn run_cell(link: &'static str, policy: LinkPolicy, n: usize, depth: u64, messages: usize) -> ClusterRow {
    let config = ClusterConfig::basic(n)
        .with_seed(SEED)
        .with_protocol(protocol_for(depth));
    let storage = StorageRegistry::in_memory(n);
    let tcp = TcpConfig::default().with_seed(SEED).with_link(policy);
    let threads_before = os_threads();
    let mut cluster = TcpCluster::with_registry_and_tcp(config, storage, tcp)
        .expect("loopback listeners must bind");
    let threads_during = os_threads();
    let result = drive_socket_load(
        &mut cluster,
        messages,
        32,
        Duration::from_micros(500),
        Duration::from_secs(120),
    );
    assert!(
        result.all_delivered,
        "E15 load must complete (link {link}, N = {n}, W = {depth})"
    );
    assert_eq!(
        cluster.decode_failures(),
        0,
        "healthy streams never produce undecodable frames"
    );
    let fsyncs: u64 = cluster
        .storage()
        .iter()
        .map(|(_, store)| store.metrics().snapshot().sync_ops)
        .sum();
    let tcp_snapshot = cluster.runtime().tcp_metrics().snapshot();
    cluster.shutdown();
    ClusterRow {
        link,
        processes: n,
        depth,
        messages,
        throughput_msgs_per_sec: result.throughput_msgs_per_sec,
        mean_latency_ms: result.mean_latency_ms,
        p50_latency_ms: result.p50_latency_ms,
        p99_latency_ms: result.p99_latency_ms,
        fsyncs,
        fsyncs_per_msg: fsyncs as f64 / messages as f64,
        os_threads: threads_during.saturating_sub(threads_before),
        frames_dropped: tcp_snapshot.frames_dropped,
        torn_frames: tcp_snapshot.torn_frames,
    }
}

/// Runs the full measurement matrix and returns one row per cell.
pub fn run_rows(quick: bool) -> Vec<ClusterRow> {
    // 96 full-mode messages matches E14's run length, so the loopback
    // N = 3 row amortizes startup identically and cross-checks cleanly.
    let messages = if quick { 24 } else { 96 };
    let mut rows = Vec::new();
    for (link, policy) in links() {
        for &n in sizes(quick) {
            for &depth in depths() {
                rows.push(run_cell(link, policy, n, depth, messages));
            }
        }
    }
    rows
}

/// Runs the experiment and renders its table.
pub fn run(quick: bool) -> Table {
    table_from_rows(&run_rows(quick))
}

/// Renders measured rows as the E15 report table.
pub fn table_from_rows(rows: &[ClusterRow]) -> Table {
    let mut table = Table::new(
        "E15",
        "cluster-size sweep over the event-loop socket transport: throughput, latency, fsyncs and threads vs N",
        &[
            "link",
            "N",
            "W",
            "messages",
            "msgs/s",
            "p50 (ms)",
            "p99 (ms)",
            "fsyncs/msg",
            "threads",
            "frames dropped",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.link.to_string(),
            row.processes.to_string(),
            row.depth.to_string(),
            row.messages.to_string(),
            fmt_f64(row.throughput_msgs_per_sec),
            fmt_f64(row.p50_latency_ms),
            fmt_f64(row.p99_latency_ms),
            fmt_f64(row.fsyncs_per_msg),
            row.os_threads.to_string(),
            row.frames_dropped.to_string(),
        ]);
    }
    table.note(
        "threads = OS threads the deployment added (N workers + 1 poller on the \
         event-loop transport; thread-per-connection needed 2N(N-1) + 2N)",
    );
    table.note(
        "delayed_2_5ms applies the simulator's 2-5 ms E12 link per hop via \
         LinkPolicy, so those rows are the socket twin of the E12 W-scaling curve; \
         loopback rows are CPU-path-bound and its N = 3 row cross-checks E14",
    );
    table
}

/// Serializes the rows as the `BENCH_cluster.json` baseline.
pub fn to_json(rows: &[ClusterRow], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"E15\",");
    let _ = writeln!(
        out,
        "  \"title\": \"cluster-size sweep over the event-loop socket transport: delivered msgs/sec, p50/p99 latency, fsyncs/msg and OS threads vs N\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(
        out,
        "  \"note\": \"os_threads counts threads the deployment added (N workers + 1 poller); delayed_2_5ms rows carry the simulator's E12 link band on real sockets\","
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"link\": \"{}\", \"processes\": {}, \"pipeline_depth\": {}, \
             \"messages\": {}, \"throughput_msgs_per_sec\": {}, \
             \"mean_latency_ms\": {}, \"p50_latency_ms\": {}, \"p99_latency_ms\": {}, \
             \"fsyncs\": {}, \"fsyncs_per_msg\": {}, \"os_threads\": {}, \
             \"frames_dropped\": {}, \"torn_frames\": {}}}",
            row.link,
            row.processes,
            row.depth,
            row.messages,
            fmt_f64(row.throughput_msgs_per_sec),
            fmt_f64(row.mean_latency_ms),
            fmt_f64(row.p50_latency_ms),
            fmt_f64(row.p99_latency_ms),
            row.fsyncs,
            fmt_f64(row.fsyncs_per_msg),
            row.os_threads,
            row.frames_dropped,
            row.torn_frames,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_loopback_cell_completes_with_linear_threads_and_clean_streams() {
        // One N = 5 cell instead of the full quick matrix: the sweep
        // itself runs in CI via `exp_cluster --quick`.
        let row = run_cell("loopback", LinkPolicy::direct(), 5, 4, 24);
        assert!(row.throughput_msgs_per_sec > 0.0, "{row:?}");
        assert!(row.p99_latency_ms >= row.p50_latency_ms, "{row:?}");
        assert!(row.fsyncs > 0, "consensus must pay durability barriers: {row:?}");
        assert_eq!(row.torn_frames, 0, "healthy run tore a frame: {row:?}");
        // Other tests spawn threads concurrently, so the delta is noisy
        // upward — but it must stay far below thread-per-connection's
        // 2N(N-1) + 2N = 50.
        assert!(
            row.os_threads <= 2 * row.processes + 2,
            "N = 5 must run O(N) threads, not O(N^2): {row:?}"
        );
        let table = table_from_rows(std::slice::from_ref(&row));
        assert_eq!(table.len(), 1);
        let json = to_json(std::slice::from_ref(&row), true);
        assert!(json.contains("\"experiment\": \"E15\""));
        assert!(json.contains("\"os_threads\""));
    }

    #[test]
    fn a_delayed_cell_shows_the_link_in_its_latency() {
        let policy = LinkPolicy::delayed(Duration::from_millis(2), Duration::from_millis(5));
        let row = run_cell("delayed_2_5ms", policy, 3, 4, 12);
        // One delivery crosses at least one 2-5 ms hop (proposal or ack),
        // so the median cannot sit at loopback's tens of microseconds.
        assert!(
            row.p50_latency_ms >= 1.0,
            "a 2-5 ms link must show up in delivery latency: {row:?}"
        );
    }
}
