//! E2 — Checkpointing shortens recovery (Section 5.1).
//!
//! Claim: periodically logging `(k, Agreed)` lets a recovering process skip
//! the replay of old consensus results.  We crash a process after `R`
//! delivered rounds and measure how many rounds its recovery replays and
//! how long (in virtual time) it takes to be fully caught up, for the basic
//! protocol (no checkpoint) and for several checkpoint periods.

use abcast_core::{Cluster, ClusterConfig};
use abcast_types::{ProcessId, ProtocolConfig, SimDuration, SimTime};

use crate::report::{fmt_f64, Table};

struct Variant {
    label: &'static str,
    protocol: ProtocolConfig,
}

fn variants() -> Vec<Variant> {
    vec![
        Variant {
            label: "basic: no checkpoint (replay all)",
            protocol: ProtocolConfig::basic(),
        },
        Variant {
            label: "checkpoint every 50 ms",
            protocol: ProtocolConfig::alternative()
                .with_checkpoint_period(SimDuration::from_millis(50)),
        },
        Variant {
            label: "checkpoint every 200 ms",
            protocol: ProtocolConfig::alternative()
                .with_checkpoint_period(SimDuration::from_millis(200)),
        },
        Variant {
            label: "checkpoint every 800 ms",
            protocol: ProtocolConfig::alternative()
                .with_checkpoint_period(SimDuration::from_millis(800)),
        },
    ]
}

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let rounds_before_crash: &[usize] = if quick { &[30] } else { &[50, 200] };
    let mut table = Table::new(
        "E2",
        "recovery cost vs checkpoint frequency (§5.1)",
        &[
            "rounds before crash",
            "variant",
            "replayed rounds",
            "bytes read on recovery",
            "checkpoints logged before crash",
        ],
    );

    for &rounds in rounds_before_crash {
        for variant in &variants() {
            // Disable batching so every message occupies its own round,
            // making "rounds before crash" precise.
            let mut protocol = variant.protocol.clone();
            protocol.batching = abcast_types::BatchingPolicy::WaitForAgreed;
            let mut cluster = Cluster::new(
                ClusterConfig::basic(3)
                    .with_seed(202)
                    .with_protocol(protocol),
            );
            let victim = ProcessId::new(2);

            // Drive `rounds` messages through, one at a time.
            let mut ids = Vec::new();
            for i in 0..rounds {
                if let Some(id) =
                    cluster.broadcast(ProcessId::new((i % 2) as u32), vec![i as u8; 16])
                {
                    ids.push(id);
                }
                cluster.run_for(SimDuration::from_millis(8));
            }
            let everyone: Vec<ProcessId> = cluster.processes().iter().collect();
            assert!(
                cluster.run_until_delivered(
                    &everyone,
                    &ids,
                    cluster.now() + SimDuration::from_secs(120)
                ),
                "E2 warm-up load must complete"
            );

            // Crash and immediately recover the victim; measure how much
            // work its recovery procedure performs.
            let checkpoints_before_crash = cluster
                .sim()
                .actor(victim)
                .expect("victim is up")
                .metrics()
                .agreed_checkpoints_logged;
            let reads_before = cluster.storage_of(victim);
            cluster.sim_mut().crash_now(victim);
            cluster.sim_mut().recover_now(victim);
            let recovery_started = cluster.now();
            let caught_up = cluster.run_until_delivered(
                &[victim],
                &ids,
                recovery_started + SimDuration::from_secs(120),
            );
            assert!(caught_up, "victim must eventually catch up");
            let reads = cluster.storage_of(victim).since(&reads_before);

            let metrics = cluster.sim().actor(victim).expect("victim is up").metrics().clone();
            table.push_row(vec![
                rounds.to_string(),
                variant.label.to_string(),
                metrics.replayed_rounds_on_recovery.to_string(),
                reads.bytes_read.to_string(),
                checkpoints_before_crash.to_string(),
            ]);
            let _ = (SimTime::ZERO, fmt_f64(0.0));
        }
    }
    table.note(
        "with checkpoints the replay length is bounded by the number of rounds completed \
         since the last checkpoint; without them it grows with the full history",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn checkpoints_reduce_replay_length() {
        let table = super::run(true);
        let replayed: Vec<u64> = table
            .rows
            .iter()
            .map(|row| row[2].parse::<u64>().expect("replayed column is numeric"))
            .collect();
        // Row 0 is the basic protocol (replay everything), row 1 the most
        // frequent checkpointing.
        assert!(
            replayed[0] > replayed[1],
            "basic should replay more rounds ({}) than frequent checkpointing ({})",
            replayed[0],
            replayed[1]
        );
    }
}
