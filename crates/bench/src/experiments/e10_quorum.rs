//! E10 — Quorum-based replica management over atomic broadcast
//! (Section 6.3).
//!
//! The bridge between weighted voting and broadcast-ordered updates: writes
//! are totally ordered (so every replica applies the same versions), reads
//! contact a read quorum and keep the freshest copy.  We sweep the
//! read/write quorum split for a five-replica system and report how many
//! simultaneously down replicas each operation tolerates, plus whether a
//! quorum read observes the latest committed write when some replicas lag.

use abcast_core::ConsensusConfig;
use abcast_replication::quorum::{combine_read_replies, QuorumConfig, QuorumReadOutcome, ReadReply};
use abcast_replication::{KvCommand, KvStore, Replica};
use abcast_sim::{SimConfig, Simulation};
use abcast_types::{ProcessId, ProtocolConfig, SimDuration, SimTime};

use crate::report::Table;

type KvReplica = Replica<KvStore>;

/// Largest number of down replicas that still leaves `threshold` votes
/// among unit-weight replicas.
fn tolerated_down(n: usize, threshold: u64) -> usize {
    n - threshold as usize
}

/// Runs a small cluster, writes through the broadcast while two replicas
/// are down, and checks that a quorum read still returns the latest value.
fn freshness_check(config: &QuorumConfig, quick: bool) -> bool {
    let n = 5;
    let writes = if quick { 5 } else { 20 };
    let mut sim = Simulation::new(SimConfig::lan(n).with_seed(1010), |_p, _s| {
        KvReplica::new(ProtocolConfig::alternative(), ConsensusConfig::crash_recovery())
    });
    // Two replicas are down for the whole run (a minority).
    sim.crash_now(ProcessId::new(3));
    sim.crash_now(ProcessId::new(4));

    let mut last_id = None;
    for i in 0..writes {
        let cmd = KvCommand::put("x", format!("v{i}"));
        last_id = sim.with_actor_mut(ProcessId::new(0), |r, ctx| r.submit(&cmd, ctx));
        sim.run_for(SimDuration::from_millis(10));
    }
    let last_id = last_id.expect("writer is up");
    let done = sim.run_until(SimTime::from_micros(120_000_000), |sim| {
        [0u32, 1, 2].iter().all(|q| {
            sim.actor(ProcessId::new(*q))
                .map(|r| r.has_executed(last_id))
                .unwrap_or(false)
        })
    });
    assert!(done, "up replicas must apply the writes");

    let replies: Vec<ReadReply<Option<String>>> = sim
        .processes()
        .iter()
        .filter_map(|q| {
            sim.actor(q).map(|replica| ReadReply {
                replica: q,
                version: replica.broadcast().agreed().total_delivered(),
                value: replica.state().get("x").map(str::to_string),
            })
        })
        .collect();
    match combine_read_replies(config, &replies) {
        QuorumReadOutcome::Value { value, .. } => {
            value.as_deref() == Some(&format!("v{}", writes - 1))
        }
        QuorumReadOutcome::InsufficientQuorum { .. } => false,
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let n = 5;
    let mut table = Table::new(
        "E10",
        "quorum splits over broadcast-ordered updates: fault tolerance and freshness (§6.3)",
        &[
            "read quorum",
            "write quorum",
            "reads tolerate down",
            "writes tolerate down",
            "fresh read with 2 replicas down",
        ],
    );

    let splits: &[(u64, u64)] = &[(1, 5), (2, 4), (3, 3)];
    for &(r, w) in splits {
        let config = QuorumConfig::new(vec![1; n], r, w).expect("valid split");
        let fresh = if w as usize <= n - 2 || r as usize <= n - 2 {
            // The quorum is reachable with two replicas down; check
            // freshness end-to-end.
            freshness_check(&config, quick)
        } else {
            false
        };
        table.push_row(vec![
            r.to_string(),
            w.to_string(),
            tolerated_down(n, r).to_string(),
            tolerated_down(n, w).to_string(),
            if fresh { "yes" } else { "n/a (quorum unreachable)" }.to_string(),
        ]);
    }
    table.note(
        "because updates are totally ordered by the broadcast before being applied, any read \
         quorum that intersects the set of up-to-date replicas returns the latest version; \
         the read/write split only trades read availability against write availability",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn majority_quorums_tolerate_a_minority_down_and_read_fresh_values() {
        let table = super::run(true);
        // The (3,3) row: reads and writes both tolerate 2 down replicas.
        let majority_row = table.rows.iter().find(|r| r[0] == "3").expect("row exists");
        assert_eq!(majority_row[2], "2");
        assert_eq!(majority_row[3], "2");
        assert_eq!(majority_row[4], "yes");
    }
}
