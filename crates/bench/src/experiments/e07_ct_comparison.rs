//! E7 — Reduction to Chandra–Toueg when crashes are definitive
//! (Sections 5.6 and 7).
//!
//! Claim: "when crashes are definitive, the protocol reduces to the
//! Chandra-Toueg's Atomic Broadcast protocol."  The observable difference
//! in a crash-free run is the stable-storage logging that the
//! crash-recovery model requires; ordering latency and throughput should be
//! essentially the same.  We run the same crash-free load over the
//! crash-recovery configuration and over the crash-stop baseline (no
//! logging anywhere) and compare.

use abcast_core::{ClusterConfig, ConsensusConfig};
use abcast_types::{ProtocolConfig, SimDuration};

use crate::report::{fmt_f64, Table};
use crate::workload::run_load;

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let messages = if quick { 40 } else { 300 };

    let mut table = Table::new(
        "E7",
        "crash-recovery protocol vs crash-stop (Chandra–Toueg style) baseline, crash-free run (§5.6)",
        &[
            "variant",
            "messages",
            "write ops",
            "mean latency (ms)",
            "p99 latency (ms)",
            "throughput (msg/s)",
        ],
    );

    let variants = [
        (
            "crash-recovery (basic protocol, logged consensus)",
            ProtocolConfig::basic(),
            ConsensusConfig::crash_recovery(),
        ),
        (
            "crash-stop baseline (no stable storage)",
            ProtocolConfig::basic(),
            ConsensusConfig::crash_stop(),
        ),
    ];

    for (label, protocol, consensus) in variants {
        let (cluster, result) = run_load(
            ClusterConfig::basic(3)
                .with_seed(707)
                .with_protocol(protocol)
                .with_consensus(consensus),
            messages,
            32,
            SimDuration::from_millis(2),
        );
        assert!(result.all_delivered, "E7 load must complete");
        table.push_row(vec![
            label.to_string(),
            messages.to_string(),
            result.storage.write_ops().to_string(),
            fmt_f64(result.mean_latency_ms),
            fmt_f64(result.p99_latency_ms),
            fmt_f64(result.throughput_msgs_per_sec),
        ]);
        drop(cluster);
    }
    table.note(
        "the message pattern is identical; supporting recovery costs only the consensus-side \
         log writes (the simulator charges no latency for them, so latency and throughput match)",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn crash_stop_baseline_barely_logs_and_matches_ordering_behaviour() {
        let table = super::run(true);
        let cr_writes: u64 = table.rows[0][2].parse().expect("numeric");
        let cs_writes: u64 = table.rows[1][2].parse().expect("numeric");
        assert!(
            cs_writes * 10 < cr_writes,
            "crash-stop ({cs_writes}) should log an order of magnitude less than crash-recovery ({cr_writes})"
        );
        let cr_latency: f64 = table.rows[0][3].parse().expect("numeric");
        let cs_latency: f64 = table.rows[1][3].parse().expect("numeric");
        assert!(
            (cr_latency - cs_latency).abs() <= cr_latency.max(cs_latency),
            "latencies should be in the same ballpark"
        );
    }
}
