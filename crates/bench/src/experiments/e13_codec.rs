//! E13 — Zero-copy payload path: payload copies per delivered message,
//! eager-copy baseline vs `Bytes`-backed codec, plus an E12 throughput
//! re-measure.
//!
//! PR 2 amortized the durability barriers and PR 3 overlapped the rounds;
//! the next hot cost is memory traffic: the pre-refactor code copied every
//! payload at each layer boundary — gossip set → wire frame → consensus
//! proposal → WAL record → agreed queue → delta checkpoint — as owned
//! `Vec<u8>`s.  The refactor threads refcounted `Bytes` views end to end:
//! frames decode as slices of the received buffer, storage loads hand out
//! slices of the read buffer, and WAL record groups go to the `writev`
//! syscall without flattening.
//!
//! This experiment proves the refactor on both axes:
//!
//! * **equivalent** — the same seeded workload runs in
//!   [`CopyMode::Eager`] (every boundary copies, the pre-refactor
//!   ownership discipline, kept behind the mode switch) and in
//!   [`CopyMode::ZeroCopy`]; delivery order and the persisted
//!   `(k, Agreed)` delta records must be byte-for-byte identical;
//! * **cheaper** — the thread-local [`copymeter`] counts every payload
//!   memcpy in each mode; the acceptance criterion is ≥ 2× fewer copies
//!   per delivered message on the zero-copy path;
//! * **no throughput regression** — the E12 pipeline sweep re-runs over the
//!   framed wire and its `W = 4` delivered msgs/s must be no worse than
//!   the committed `BENCH_pipeline.json` baseline.
//!
//! The `exp_codec` binary emits `BENCH_codec.json` so the repository
//! carries the copy-cost baseline.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use abcast_core::{Cluster, ClusterConfig};
use abcast_net::LinkConfig;
use abcast_storage::{keys, StorageRegistry};
use abcast_types::copymeter::{self, CopyMode};
use abcast_types::{BatchingPolicy, MsgId, ProtocolConfig, SimDuration};

use crate::experiments::e12_pipeline::{self, PipelineRow};
use crate::report::{fmt_f64, Table};
use crate::workload::drive_load;

/// Processes in every measured cluster.
const PROCESSES: usize = 3;
/// Messages proposed to one consensus instance.
const MAX_BATCH: usize = 4;
/// Pipeline depth of the copy-accounting runs (the E12 sweet spot).
const PIPELINE_DEPTH: u64 = 4;
/// Payload size of the copy-accounting workload.
const PAYLOAD_BYTES: usize = 32;
/// Group-commit window of the WAL backend used by the runs.
const WAL_GROUP_WINDOW: usize = 8;

/// One measured copy-ownership mode.
#[derive(Clone, Debug)]
pub struct CopyRow {
    /// Ownership discipline label (`eager-copy` or `zero-copy`).
    pub mode: &'static str,
    /// Messages delivered at every process.
    pub messages: usize,
    /// Payload memcpys across the whole run (all processes).
    pub payload_copies: u64,
    /// Bytes those memcpys moved.
    pub bytes_copied: u64,
    /// The headline metric: payload copies per delivered message
    /// (denominator: `messages × processes`, each message is delivered
    /// everywhere).
    pub copies_per_delivered_msg: f64,
    /// Delivered messages per virtual second, for reference.
    pub throughput_msgs_per_sec: f64,
}

/// Everything one mode's run produced: the measured row plus the outputs
/// the equivalence check compares across modes.
pub struct ModeRun {
    /// The measured counters.
    pub row: CopyRow,
    /// Delivery order at each process.
    pub orders: Vec<Vec<MsgId>>,
    /// Persisted `(k, Agreed)` delta records of each process, raw bytes.
    pub delta_records: Vec<Vec<Vec<u8>>>,
}

fn latency_link() -> LinkConfig {
    LinkConfig::lan().with_delay(SimDuration::from_millis(2), SimDuration::from_millis(5))
}

fn temp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "abcast-e13-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Runs the copy-accounting workload under one ownership mode.
///
/// The cluster speaks byte frames over a latency-dominated link, orders
/// through pipelined consensus (`W = 4`), and persists into a WAL-backed
/// registry — so the count covers all five layers the refactor touches.
pub fn run_mode(quick: bool, mode: CopyMode) -> ModeRun {
    let messages = if quick { 24 } else { 96 };
    let label = match mode {
        CopyMode::Eager => "eager-copy",
        CopyMode::ZeroCopy => "zero-copy",
    };
    let base = temp_base(label);
    let _ = fs::remove_dir_all(&base);
    let registry = StorageRegistry::wal_in(&base, PROCESSES, WAL_GROUP_WINDOW)
        .expect("wal registry opens");

    copymeter::set_mode(mode);
    let config = ClusterConfig::basic(PROCESSES)
        .with_seed(1301)
        .with_link(latency_link())
        .with_protocol(
            ProtocolConfig::alternative()
                .with_batching(BatchingPolicy::EarlyReturn { max_batch: MAX_BATCH })
                .with_pipeline_depth(PIPELINE_DEPTH),
        );
    let mut cluster = Cluster::with_registry(config, registry.clone());
    let before = copymeter::snapshot();
    let result = drive_load(
        &mut cluster,
        messages,
        PAYLOAD_BYTES,
        SimDuration::from_micros(500),
        SimDuration::from_secs(60),
    );
    let copies = copymeter::snapshot().since(&before);
    copymeter::set_mode(CopyMode::ZeroCopy);
    assert!(result.all_delivered, "E13 load must complete ({label})");
    assert_eq!(cluster.decode_failures(), 0, "no frame may fail to decode");

    let orders: Vec<Vec<MsgId>> = cluster
        .processes()
        .iter()
        .map(|p| {
            cluster
                .delivered(p)
                .iter()
                .map(|m| m.id())
                .collect()
        })
        .collect();
    let delta_records: Vec<Vec<Vec<u8>>> = cluster
        .processes()
        .iter()
        .map(|p| {
            registry
                .storage_for(p)
                .expect("registry covers every process")
                .load_log(&keys::agreed_delta())
                .expect("delta log readable")
                .iter()
                .map(|record| record.to_vec())
                .collect()
        })
        .collect();
    drop(cluster);
    let _ = fs::remove_dir_all(&base);

    ModeRun {
        row: CopyRow {
            mode: label,
            messages,
            payload_copies: copies.payload_copies,
            bytes_copied: copies.bytes_copied,
            copies_per_delivered_msg: copies.payload_copies as f64
                / (messages as f64 * PROCESSES as f64),
            throughput_msgs_per_sec: result.throughput_msgs_per_sec,
        },
        orders,
        delta_records,
    }
}

/// Runs both modes, asserts their runs are byte-for-byte equivalent, and
/// returns the copy rows (eager first) plus the re-measured E12 sweep.
pub fn run_rows(quick: bool) -> (Vec<CopyRow>, Vec<PipelineRow>) {
    let eager = run_mode(quick, CopyMode::Eager);
    let zero = run_mode(quick, CopyMode::ZeroCopy);
    assert_eq!(
        eager.orders, zero.orders,
        "eager and zero-copy runs must deliver the identical sequence"
    );
    assert_eq!(
        eager.delta_records, zero.delta_records,
        "persisted delta records must be byte-for-byte identical across modes"
    );
    let pipeline = e12_pipeline::run_rows(quick);
    (vec![eager.row, zero.row], pipeline)
}

/// `copies-per-message(eager) / copies-per-message(zero-copy)`.
pub fn copy_reduction_factor(rows: &[CopyRow]) -> Option<f64> {
    let per_msg = |mode: &str| {
        rows.iter()
            .find(|r| r.mode == mode)
            .map(|r| r.copies_per_delivered_msg)
    };
    match (per_msg("eager-copy"), per_msg("zero-copy")) {
        (Some(eager), Some(zero)) if zero > 0.0 => Some(eager / zero),
        _ => None,
    }
}

/// Runs the experiment and renders its table.
pub fn run(quick: bool) -> Table {
    let (copy_rows, pipeline_rows) = run_rows(quick);
    table_from_rows(&copy_rows, &pipeline_rows)
}

/// Renders measured rows as the E13 report table.
pub fn table_from_rows(copy_rows: &[CopyRow], pipeline_rows: &[PipelineRow]) -> Table {
    let mut table = Table::new(
        "E13",
        "zero-copy payload path: payload memcpys per delivered message",
        &[
            "mode",
            "messages",
            "payload copies",
            "bytes copied",
            "copies / delivered msg",
            "delivered msgs/s",
        ],
    );
    for row in copy_rows {
        table.push_row(vec![
            row.mode.to_string(),
            row.messages.to_string(),
            row.payload_copies.to_string(),
            row.bytes_copied.to_string(),
            fmt_f64(row.copies_per_delivered_msg),
            fmt_f64(row.throughput_msgs_per_sec),
        ]);
    }
    if let Some(factor) = copy_reduction_factor(copy_rows) {
        table.note(format!(
            "zero-copy performs {factor:.1}x fewer payload memcpys per delivered message \
             than the eager (pre-refactor) ownership discipline"
        ));
    }
    if let Some(w4) = pipeline_rows
        .iter()
        .find(|r| r.variant == "alternative" && r.depth == 4)
    {
        table.note(format!(
            "E12 re-measured over the framed wire: W = 4 delivers {} msgs/s \
             (baseline BENCH_pipeline.json: 794.2 at W = 4, full mode)",
            fmt_f64(w4.throughput_msgs_per_sec)
        ));
    }
    table.note(
        "both modes run the identical seeded workload; delivery order and the persisted \
         (k, Agreed) delta records are asserted byte-for-byte equal before reporting",
    );
    table
}

/// Serializes the measurements as the `BENCH_codec.json` baseline.
pub fn to_json(copy_rows: &[CopyRow], pipeline_rows: &[PipelineRow], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"E13\",");
    let _ = writeln!(
        out,
        "  \"title\": \"payload copies per delivered message, eager vs zero-copy, plus the E12 re-measure\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"processes\": {PROCESSES},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(out, "  \"pipeline_depth\": {PIPELINE_DEPTH},");
    let _ = writeln!(out, "  \"payload_bytes\": {PAYLOAD_BYTES},");
    let _ = writeln!(
        out,
        "  \"copy_reduction_factor\": {},",
        fmt_f64(copy_reduction_factor(copy_rows).unwrap_or(0.0))
    );
    out.push_str("  \"copy_rows\": [\n");
    for (i, row) in copy_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"messages\": {}, \"payload_copies\": {}, \
             \"bytes_copied\": {}, \"copies_per_delivered_msg\": {}, \
             \"throughput_msgs_per_sec\": {}}}",
            row.mode,
            row.messages,
            row.payload_copies,
            row.bytes_copied,
            fmt_f64(row.copies_per_delivered_msg),
            fmt_f64(row.throughput_msgs_per_sec),
        );
        out.push_str(if i + 1 < copy_rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"pipeline_rows\": [\n");
    for (i, row) in pipeline_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"variant\": \"{}\", \"pipeline_depth\": {}, \"messages\": {}, \
             \"throughput_msgs_per_sec\": {}, \"mean_latency_ms\": {}, \
             \"syncs_per_msg_per_proc\": {}}}",
            row.variant,
            row.depth,
            row.messages,
            fmt_f64(row.throughput_msgs_per_sec),
            fmt_f64(row.mean_latency_ms),
            fmt_f64(row.syncs_per_msg_per_proc),
        );
        out.push_str(if i + 1 < pipeline_rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_copy_halves_payload_copies_and_preserves_the_run_bit_for_bit() {
        // `run_rows` already asserts the cross-mode equivalence (delivery
        // order and delta records byte-for-byte); here we additionally pin
        // the acceptance criterion on the copy counts.
        let (copy_rows, pipeline_rows) = run_rows(true);
        assert_eq!(copy_rows.len(), 2);
        let factor = copy_reduction_factor(&copy_rows).expect("both modes measured");
        assert!(
            factor >= 2.0,
            "acceptance criterion: the zero-copy path must perform ≥2x fewer payload \
             copies per delivered message (measured {factor:.2}x, rows: {copy_rows:?})"
        );
        // The E12 re-measure still shows the pipeline speedup — delivered
        // msgs/s at W = 4 has not regressed behind the refactor.
        let speedup = e12_pipeline::speedup(&pipeline_rows, "alternative", 4)
            .expect("pipeline sweep re-measured");
        assert!(
            speedup >= 1.5,
            "W = 4 throughput must stay ≥1.5x over W = 1 (measured {speedup:.2}x)"
        );
        let table = table_from_rows(&copy_rows, &pipeline_rows);
        assert_eq!(table.len(), 2);
        let json = to_json(&copy_rows, &pipeline_rows, true);
        assert!(json.contains("\"experiment\": \"E13\""));
        assert_eq!(json.matches("\"mode\"").count(), 2);
        assert!(json.matches("\"pipeline_depth\":").count() >= 4);
    }
}
