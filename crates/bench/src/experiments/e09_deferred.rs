//! E9 — Deferred-update replicated database (Section 6.2).
//!
//! Claim: atomic broadcast is a good termination protocol for
//! deferred-update replication — all replicas certify transactions in the
//! same order and stay consistent, with aborts only on genuine read-write
//! conflicts.  We run a transactional workload with a varying degree of
//! contention (smaller key spaces conflict more) and report commit/abort
//! rates, consistency across replicas and throughput.

use abcast_core::ConsensusConfig;
use abcast_replication::{CertifyingDatabase, Replica, Transaction};
use abcast_sim::{SimConfig, Simulation};
use abcast_types::{MsgId, ProcessId, ProtocolConfig, SimDuration, SimTime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::report::{fmt_f64, Table};

type DbReplica = Replica<CertifyingDatabase>;

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let transactions = if quick { 40 } else { 300 };
    let key_spaces: &[usize] = if quick { &[2, 16] } else { &[2, 8, 32, 128] };

    let mut table = Table::new(
        "E9",
        "deferred-update replication: certification outcome vs contention (§6.2)",
        &[
            "distinct keys",
            "transactions",
            "committed",
            "aborted",
            "abort rate",
            "replicas consistent",
            "throughput (tx/s)",
        ],
    );

    for &keys in key_spaces {
        let n = 3;
        let mut sim = Simulation::new(SimConfig::lan(n).with_seed(909), |_p, _s| {
            DbReplica::new(ProtocolConfig::alternative(), ConsensusConfig::crash_recovery())
        });
        let mut rng = ChaCha8Rng::seed_from_u64(keys as u64);
        let started = sim.now();

        let mut ids: Vec<MsgId> = Vec::new();
        for txid in 0..transactions {
            // The client executes optimistically against a random replica:
            // it reads one key (recording its version) and writes another.
            let home = ProcessId::new(rng.gen_range(0..n) as u32);
            let read_key = format!("k{}", rng.gen_range(0..keys));
            let write_key = format!("k{}", rng.gen_range(0..keys));
            let Some(id) = sim.with_actor_mut(home, |replica, ctx| {
                let (_, version) = replica.state().read(&read_key);
                let tx = Transaction::new(txid as u64)
                    .read(read_key.clone(), version)
                    .write(write_key.clone(), format!("tx{txid}"));
                replica.submit(&tx, ctx)
            }) else {
                continue;
            };
            ids.push(id);
            sim.run_for(SimDuration::from_millis(6));
        }

        let done = sim.run_until(SimTime::from_micros(600_000_000), |sim| {
            sim.processes().iter().all(|q| {
                sim.actor(q)
                    .map(|r| ids.iter().all(|id| r.has_executed(*id)))
                    .unwrap_or(false)
            })
        });
        assert!(done, "E9 transactions must all be certified");
        let elapsed = sim.now().duration_since(started).as_secs_f64().max(1e-9);

        let reference = sim.actor(ProcessId::new(0)).expect("up").state().clone();
        let consistent = sim
            .processes()
            .iter()
            .all(|q| sim.actor(q).map(|r| r.state() == &reference).unwrap_or(false));

        table.push_row(vec![
            keys.to_string(),
            ids.len().to_string(),
            reference.committed().to_string(),
            reference.aborted().to_string(),
            fmt_f64(reference.abort_rate()),
            if consistent { "yes" } else { "NO" }.to_string(),
            fmt_f64(ids.len() as f64 / elapsed),
        ]);
    }
    table.note("smaller key spaces mean more read-write conflicts, hence higher abort rates; replicas always agree on the outcome of every transaction");
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn contention_increases_aborts_and_replicas_stay_consistent() {
        let table = super::run(true);
        for row in &table.rows {
            assert_eq!(row[5], "yes", "replicas diverged in row {row:?}");
        }
        let high_contention: f64 = table.rows[0][4].parse().expect("numeric");
        let low_contention: f64 = table.rows[1][4].parse().expect("numeric");
        assert!(
            high_contention >= low_contention,
            "more contention ({high_contention}) should not abort less than low contention ({low_contention})"
        );
    }
}
