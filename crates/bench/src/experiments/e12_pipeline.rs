//! E12 — Pipelined consensus rounds: delivered throughput and rounds in
//! flight as a function of the pipeline depth `W`.
//!
//! With PR 2's group-commit WAL the stable-storage barriers no longer
//! dominate; the critical path is the strictly sequential round loop — a
//! process sits idle between "round `k` decided" and "round `k + 1`
//! proposed" for a full consensus latency.  Pipelining opens instances
//! `k .. k + W` concurrently (decided batches still apply strictly in
//! round order), so under link latency the rounds overlap and delivered
//! messages per second scale until the window or the workload saturates.
//!
//! The experiment drives the same bounded-batch load (`max_batch = 4`, so
//! batching cannot absorb the backlog that pipelining is meant to drain)
//! over a latency-dominated link for `W ∈ {1, 2, 4, 8}`, for both logging
//! variants, and reports throughput, latency, the observed peak of
//! rounds-in-flight and the fsync cost (which must not change with `W`).
//! The `exp_pipeline` binary emits `BENCH_pipeline.json` so the repository
//! carries the pipelining perf baseline.

use std::fmt::Write as _;

use abcast_core::{Cluster, ClusterConfig};
use abcast_net::LinkConfig;
use abcast_types::{BatchingPolicy, ProcessId, ProtocolConfig, SimDuration};

use crate::report::{fmt_f64, Table};
use crate::workload::drive_load;

/// Processes in every measured cluster.
const PROCESSES: usize = 3;
/// Messages proposed to one consensus instance — kept small so the round
/// rate, not the batch size, carries the load.
const MAX_BATCH: usize = 4;

/// One measured variant × pipeline-depth combination.
#[derive(Clone, Debug)]
pub struct PipelineRow {
    /// Protocol variant label (`basic` or `alternative`).
    pub variant: &'static str,
    /// Pipeline depth `W`.
    pub depth: u64,
    /// Messages delivered at every process.
    pub messages: usize,
    /// Delivered messages per virtual second.
    pub throughput_msgs_per_sec: f64,
    /// Mean A-broadcast → A-deliver latency at the sender (ms).
    pub mean_latency_ms: f64,
    /// Ordering rounds completed at process 0.
    pub rounds: u64,
    /// Peak rounds simultaneously in flight, max over all processes.
    pub max_rounds_in_flight: u64,
    /// Durability barriers per delivered message per process.  Pipelining
    /// reorders deciding, not logging, so this stays in the same regime
    /// across depths — it creeps up slightly at large `W` only because
    /// deeper windows run more (hence emptier) rounds for the same load.
    pub syncs_per_msg_per_proc: f64,
}

/// The depth sweep: `{1, 4}` in quick mode, `{1, 2, 4, 8}` in full mode.
pub fn depths(quick: bool) -> &'static [u64] {
    if quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8]
    }
}

/// A link whose latency dominates the round trip: the regime in which the
/// sequential round loop leaves the process idle between rounds.
fn latency_link() -> LinkConfig {
    LinkConfig::lan().with_delay(SimDuration::from_millis(2), SimDuration::from_millis(5))
}

fn protocol_for(variant: &str, depth: u64) -> ProtocolConfig {
    let base = match variant {
        "basic" => ProtocolConfig::basic(),
        _ => ProtocolConfig::alternative(),
    };
    base.with_batching(BatchingPolicy::EarlyReturn { max_batch: MAX_BATCH })
        .with_pipeline_depth(depth)
}

/// Runs the measurement matrix and returns one row per combination.
pub fn run_rows(quick: bool) -> Vec<PipelineRow> {
    let messages = if quick { 24 } else { 96 };
    let mut rows = Vec::new();
    for variant in ["basic", "alternative"] {
        for &depth in depths(quick) {
            let config = ClusterConfig::basic(PROCESSES)
                .with_seed(1201)
                .with_link(latency_link())
                .with_protocol(protocol_for(variant, depth));
            let mut cluster = Cluster::new(config);
            let result = drive_load(
                &mut cluster,
                messages,
                32,
                SimDuration::from_micros(500),
                SimDuration::from_secs(60),
            );
            assert!(result.all_delivered, "E12 load must complete (W = {depth})");
            let max_in_flight = cluster
                .processes()
                .iter()
                .filter_map(|p| cluster.sim().actor(p))
                .map(|a| a.metrics().max_rounds_in_flight)
                .max()
                .unwrap_or(0);
            let rounds = cluster
                .sim()
                .actor(ProcessId::new(0))
                .map(|a| a.metrics().rounds_completed)
                .unwrap_or(0);
            rows.push(PipelineRow {
                variant,
                depth,
                messages,
                throughput_msgs_per_sec: result.throughput_msgs_per_sec,
                mean_latency_ms: result.mean_latency_ms,
                rounds,
                max_rounds_in_flight: max_in_flight,
                syncs_per_msg_per_proc: result.storage.sync_ops as f64
                    / (messages as f64 * PROCESSES as f64),
            });
        }
    }
    rows
}

/// Runs the experiment and renders its table.
pub fn run(quick: bool) -> Table {
    table_from_rows(&run_rows(quick))
}

/// Renders measured rows as the E12 report table.
pub fn table_from_rows(rows: &[PipelineRow]) -> Table {
    let mut table = Table::new(
        "E12",
        "pipelined consensus: throughput and rounds in flight vs depth W",
        &[
            "variant",
            "W",
            "messages",
            "delivered msgs/s",
            "mean latency (ms)",
            "rounds",
            "max rounds in flight",
            "fsyncs / msg / process",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.variant.to_string(),
            row.depth.to_string(),
            row.messages.to_string(),
            fmt_f64(row.throughput_msgs_per_sec),
            fmt_f64(row.mean_latency_ms),
            row.rounds.to_string(),
            row.max_rounds_in_flight.to_string(),
            fmt_f64(row.syncs_per_msg_per_proc),
        ]);
    }
    table.note(format!(
        "load is bounded-batch (max_batch = {MAX_BATCH}) over a {}-{} ms link, so the \
         sequential round loop, not batching, is the bottleneck being attacked",
        2, 5
    ));
    table.note(
        "W = 1 is the paper's sequential protocol; decided batches always apply in \
         round order, so every depth delivers the same sequence",
    );
    table
}

/// `throughput(W = at) / throughput(W = 1)` for one variant.
pub fn speedup(rows: &[PipelineRow], variant: &str, at: u64) -> Option<f64> {
    let throughput = |depth: u64| {
        rows.iter()
            .find(|r| r.variant == variant && r.depth == depth)
            .map(|r| r.throughput_msgs_per_sec)
    };
    match (throughput(1), throughput(at)) {
        (Some(base), Some(deep)) if base > 0.0 => Some(deep / base),
        _ => None,
    }
}

/// Serializes the rows as the `BENCH_pipeline.json` baseline.
pub fn to_json(rows: &[PipelineRow], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"E12\",");
    let _ = writeln!(
        out,
        "  \"title\": \"delivered msgs/sec and rounds in flight vs pipeline depth W\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"processes\": {PROCESSES},");
    let _ = writeln!(out, "  \"max_batch\": {MAX_BATCH},");
    for variant in ["basic", "alternative"] {
        let _ = writeln!(
            out,
            "  \"{variant}_speedup_w4_over_w1\": {},",
            fmt_f64(speedup(rows, variant, 4).unwrap_or(0.0))
        );
    }
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"variant\": \"{}\", \"pipeline_depth\": {}, \"messages\": {}, \
             \"throughput_msgs_per_sec\": {}, \"mean_latency_ms\": {}, \"rounds\": {}, \
             \"max_rounds_in_flight\": {}, \"syncs_per_msg_per_proc\": {}}}",
            row.variant,
            row.depth,
            row.messages,
            fmt_f64(row.throughput_msgs_per_sec),
            fmt_f64(row.mean_latency_ms),
            row.rounds,
            row.max_rounds_in_flight,
            fmt_f64(row.syncs_per_msg_per_proc),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_speeds_up_delivery_at_least_1_5x_at_depth_4() {
        let rows = run_rows(true);
        assert_eq!(rows.len(), 4);
        for variant in ["basic", "alternative"] {
            let speedup = speedup(&rows, variant, 4)
                .expect("both depths measured for every variant");
            assert!(
                speedup >= 1.5,
                "acceptance criterion: W = 4 must deliver ≥1.5x msgs/sec over W = 1 \
                 for the {variant} variant (measured {speedup:.2}x, rows: {rows:?})"
            );
        }
        // The pipeline actually filled, and the sequential run never ran
        // ahead of itself.
        for row in &rows {
            if row.depth == 1 {
                assert_eq!(row.max_rounds_in_flight, 1, "{row:?}");
            } else {
                assert!(row.max_rounds_in_flight > 1, "{row:?}");
            }
        }
        // The table and the JSON baseline render and carry every row.
        let table = table_from_rows(&rows);
        assert_eq!(table.len(), 4);
        let json = to_json(&rows, true);
        assert!(json.contains("\"experiment\": \"E12\""));
        assert_eq!(json.matches("\"pipeline_depth\"").count(), 4);
    }
}
