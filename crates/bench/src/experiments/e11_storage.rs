//! E11 — Storage backends: group-commit WAL vs per-operation file storage.
//!
//! The paper's cost model says stable-storage barriers dominate.  This
//! experiment runs the same broadcast load over two *real* (on-disk)
//! storage backends and measures
//!
//! * **fsyncs per delivered message per process** — the quantity group
//!   commit attacks: the seed-style file backend pays one barrier per log
//!   operation, the WAL funnels each protocol step's writes into one
//!   record group and amortizes the fsync over a window of commits;
//! * **recovery reopen time** — wall-clock time to reopen every process's
//!   storage (for the WAL: replay the journal) and rebuild the whole
//!   cluster from it, plus the rounds the protocol replays.
//!
//! The `exp_storage` binary additionally emits `BENCH_storage.json` so the
//! repository carries a perf trajectory for future changes.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use abcast_core::{Cluster, ClusterConfig};
use abcast_storage::{FileStorage, SharedStorage, StorageRegistry};
use abcast_types::{ProcessId, ProtocolConfig, SimDuration};

use crate::report::{fmt_f64, Table};
use crate::workload::drive_load;

/// Processes in every measured cluster.
const PROCESSES: usize = 3;
/// Group-commit window used for the WAL rows.
const WAL_GROUP_WINDOW: usize = 8;

/// One measured backend × protocol-variant combination.
#[derive(Clone, Debug)]
pub struct StorageRow {
    /// Backend label (`file` or `wal`).
    pub backend: &'static str,
    /// Protocol variant label (`basic` or `alternative`).
    pub variant: &'static str,
    /// Messages delivered at every process.
    pub messages: usize,
    /// Stable-storage write operations across the cluster during the load.
    pub write_ops: u64,
    /// Durability barriers (fsyncs) across the cluster during the load.
    pub sync_ops: u64,
    /// Barriers per delivered message per process — the headline metric.
    pub syncs_per_msg_per_proc: f64,
    /// Bytes written across the cluster during the load.
    pub bytes_written: u64,
    /// Wall-clock time to reopen all storages and reboot the cluster.
    pub recovery_reopen_micros: u128,
    /// Rounds replayed by process 0 during that recovery.
    pub replayed_rounds: u64,
}

enum Backend {
    File,
    /// The file backend with batch-commit sync coalescing disabled: every
    /// operation of a step's batch pays its own barrier (the seed
    /// behaviour).  Measured so the coalescing win is visible in the same
    /// table.
    FilePerOp,
    Wal,
}

impl Backend {
    fn label(&self) -> &'static str {
        match self {
            Backend::File => "file",
            Backend::FilePerOp => "file-perop",
            Backend::Wal => "wal",
        }
    }

    fn open(&self, base: &PathBuf) -> StorageRegistry {
        match self {
            Backend::File => {
                StorageRegistry::file_in(base, PROCESSES).expect("file registry opens")
            }
            Backend::FilePerOp => {
                let stores = (0..PROCESSES)
                    .map(|i| {
                        FileStorage::open(base.join(format!("p{i}")))
                            .map(|s| std::sync::Arc::new(s.with_per_op_batches()) as SharedStorage)
                    })
                    .collect::<Result<Vec<_>, _>>()
                    .expect("file registry opens");
                StorageRegistry::new(stores)
            }
            Backend::Wal => StorageRegistry::wal_in(base, PROCESSES, WAL_GROUP_WINDOW)
                .expect("wal registry opens"),
        }
    }
}

fn temp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "abcast-e11-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// Runs the measurement matrix and returns one row per combination.
///
/// Besides the historical `file`/`wal` × `basic`/`alternative` cluster
/// grid (sequential rounds, tracked since PR 2), the matrix holds two
/// `release-w8` rows: a storage-level microbench (no cluster) that commits
/// the write shape of a log-burst step directly against the batch-aware
/// file backend and against its per-op twin — see
/// [`measure_release_batches`].
pub fn run_rows(quick: bool) -> Vec<StorageRow> {
    let messages = if quick { 24 } else { 120 };
    let variants: [(&'static str, ProtocolConfig); 2] = [
        ("basic", ProtocolConfig::basic()),
        ("alternative", ProtocolConfig::alternative()),
    ];
    let mut rows = Vec::new();
    for backend in [Backend::FilePerOp, Backend::File] {
        rows.push(measure_release_batches(&backend, messages));
    }
    for backend in [Backend::File, Backend::Wal] {
        for (variant, protocol) in &variants {
            rows.push(measure(&backend, variant, protocol, messages));
        }
    }
    rows
}

/// Rounds released by one microbench step.
const RELEASE_DEPTH: usize = 8;

/// Measures the write shape of a *log-burst step* directly against one
/// storage (no cluster): each step commits, as ONE batch, a run of
/// per-round appends — one `(k, Agreed)` delta record and one `Unordered`
/// increment per released round, `W = 8` rounds — closed by a single slot
/// store.  The per-op backend pays a barrier for every append; the
/// batch-aware backend syncs each dirty *file* once when the run ends
/// (flushing before the store, so prefix durability is preserved), which
/// is the coalescing this PR adds.
fn measure_release_batches(backend: &Backend, messages: usize) -> StorageRow {
    use abcast_storage::{keys, StorageKey, WriteBatch};
    let base = temp_base(&format!("{}-release", backend.label()));
    let _ = fs::remove_dir_all(&base);
    let registry = backend.open(&base);
    let storage = registry
        .storage_for(ProcessId::new(0))
        .expect("registry covers process 0");
    let steps = messages / RELEASE_DEPTH;
    let payload = vec![0xCD_u8; 32];
    for step in 0..steps {
        let mut batch = WriteBatch::new();
        for _ in 0..RELEASE_DEPTH {
            batch.append(&keys::agreed_delta(), &payload);
            batch.append(&keys::unordered_incremental(), &payload);
        }
        batch.store(
            &StorageKey::new(format!("abcast/proposed/{step}")),
            &payload,
        );
        storage
            .commit_batch(batch)
            .expect("release batch commits");
    }
    let snapshot = storage.metrics().snapshot();
    let row = StorageRow {
        backend: backend.label(),
        variant: "release-w8",
        messages,
        write_ops: snapshot.store_ops + snapshot.append_ops,
        sync_ops: snapshot.sync_ops,
        syncs_per_msg_per_proc: snapshot.sync_ops as f64 / messages as f64,
        bytes_written: snapshot.bytes_written,
        recovery_reopen_micros: 0,
        replayed_rounds: 0,
    };
    drop(storage);
    let _ = fs::remove_dir_all(&base);
    row
}

/// Runs one backend × protocol combination and measures it.
fn measure(
    backend: &Backend,
    variant: &'static str,
    protocol: &ProtocolConfig,
    messages: usize,
) -> StorageRow {
    let base = temp_base(&format!("{}-{variant}", backend.label()));
    let _ = fs::remove_dir_all(&base);

    let config = ClusterConfig::basic(PROCESSES)
        .with_seed(1101)
        .with_protocol(protocol.clone());
    let mut cluster = Cluster::with_registry(config.clone(), backend.open(&base));
    let result = drive_load(
        &mut cluster,
        messages,
        32,
        SimDuration::from_millis(5),
        SimDuration::from_secs(60),
    );
    assert!(result.all_delivered, "E11 load must complete");
    drop(cluster);

    // Whole-deployment recovery: reopen every storage (the WAL
    // replays its journal here) and reboot the cluster, which runs
    // every process's recovery procedure.
    let started = Instant::now();
    let recovered = Cluster::with_registry(config, backend.open(&base));
    let recovery_reopen_micros = started.elapsed().as_micros();
    let replayed_rounds = recovered
        .sim()
        .actor(ProcessId::new(0))
        .expect("process 0 rebooted")
        .metrics()
        .replayed_rounds_on_recovery;
    drop(recovered);
    let _ = fs::remove_dir_all(&base);

    StorageRow {
        backend: backend.label(),
        variant,
        messages,
        write_ops: result.storage.write_ops(),
        sync_ops: result.storage.sync_ops,
        syncs_per_msg_per_proc: result.storage.sync_ops as f64
            / (messages as f64 * PROCESSES as f64),
        bytes_written: result.storage.bytes_written,
        recovery_reopen_micros,
        replayed_rounds,
    }
}

/// Runs the experiment and renders its table.
pub fn run(quick: bool) -> Table {
    let rows = run_rows(quick);
    table_from_rows(&rows)
}

/// Renders measured rows as the E11 report table.
pub fn table_from_rows(rows: &[StorageRow]) -> Table {
    let mut table = Table::new(
        "E11",
        "storage backends: group-commit WAL vs per-op file syncs",
        &[
            "backend",
            "variant",
            "messages",
            "write ops",
            "fsyncs",
            "fsyncs / msg / process",
            "bytes written",
            "recovery reopen (µs)",
            "replayed rounds",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.backend.to_string(),
            row.variant.to_string(),
            row.messages.to_string(),
            row.write_ops.to_string(),
            row.sync_ops.to_string(),
            fmt_f64(row.syncs_per_msg_per_proc),
            row.bytes_written.to_string(),
            row.recovery_reopen_micros.to_string(),
            row.replayed_rounds.to_string(),
        ]);
    }
    table.note(format!(
        "file = one sync_data per store/append (plus tmp+rename per slot), the seed behaviour; \
         wal = one CRC-framed record group per protocol step, fsync amortized over {WAL_GROUP_WINDOW} commits"
    ));
    table.note(
        "unsynced WAL records still survive process crashes (the paper's failure model): \
         they are in the journal file, only an OS/machine failure can lose the last window",
    );
    table.note(
        "checkpoints are O(delta) on both backends: the periodic (k, Agreed) write appends \
         only the messages delivered since the previous checkpoint",
    );
    table.note(format!(
        "release-w8 commits a log-burst step (a run of {RELEASE_DEPTH} delta + {RELEASE_DEPTH} \
         unordered appends, then one slot store) as one batch; file-perop pays a barrier per \
         append, file (batch-aware) syncs each dirty file once per run, flushed before the \
         store so prefix durability is preserved"
    ));
    table
}

/// Serializes the rows as the `BENCH_storage.json` baseline.
pub fn to_json(rows: &[StorageRow], quick: bool) -> String {
    let ratio = syncs_ratio(rows, "alternative");
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"E11\",");
    let _ = writeln!(
        out,
        "  \"title\": \"fsyncs per delivered message and recovery reopen time, file vs WAL\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"processes\": {PROCESSES},");
    let _ = writeln!(out, "  \"wal_group_window\": {WAL_GROUP_WINDOW},");
    let _ = writeln!(
        out,
        "  \"alternative_fsync_ratio_file_over_wal\": {},",
        fmt_f64(ratio.unwrap_or(0.0))
    );
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"backend\": \"{}\", \"variant\": \"{}\", \"messages\": {}, \
             \"write_ops\": {}, \"sync_ops\": {}, \"syncs_per_msg_per_proc\": {}, \
             \"bytes_written\": {}, \"recovery_reopen_micros\": {}, \"replayed_rounds\": {}}}",
            row.backend,
            row.variant,
            row.messages,
            row.write_ops,
            row.sync_ops,
            fmt_f64(row.syncs_per_msg_per_proc),
            row.bytes_written,
            row.recovery_reopen_micros,
            row.replayed_rounds,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// `file syncs-per-message / wal syncs-per-message` for one variant.
pub fn syncs_ratio(rows: &[StorageRow], variant: &str) -> Option<f64> {
    let per_msg = |backend: &str| {
        rows.iter()
            .find(|r| r.backend == backend && r.variant == variant)
            .map(|r| r.syncs_per_msg_per_proc)
    };
    match (per_msg("file"), per_msg("wal")) {
        (Some(file), Some(wal)) if wal > 0.0 => Some(file / wal),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_group_commit_cuts_fsyncs_at_least_3x_for_the_alternative_variant() {
        let rows = run_rows(true);
        assert_eq!(rows.len(), 6);
        let ratio = syncs_ratio(&rows, "alternative")
            .expect("both backends measured for the alternative variant");
        assert!(
            ratio >= 3.0,
            "acceptance criterion: fsyncs/msg must drop ≥3x on the WAL backend \
             (measured {ratio:.2}x, rows: {rows:?})"
        );
        // The table and the JSON baseline render without panicking and
        // carry every row.
        let table = table_from_rows(&rows);
        assert_eq!(table.len(), 6);
        let json = to_json(&rows, true);
        assert!(json.contains("\"experiment\": \"E11\""));
        assert_eq!(json.matches("\"backend\"").count(), 6);
    }

    #[test]
    fn batch_aware_file_backend_coalesces_release_step_fsyncs_at_least_2x() {
        let rows = run_rows(true);
        let per_msg = |backend: &str| {
            rows.iter()
                .find(|r| r.backend == backend && r.variant == "release-w8")
                .map(|r| r.syncs_per_msg_per_proc)
                .expect("release-w8 measured for both file backends")
        };
        let ratio = per_msg("file-perop") / per_msg("file");
        assert!(
            ratio >= 2.0,
            "coalescing must cut the release-step fsyncs at least 2x \
             (measured {ratio:.2}x, rows: {rows:?})"
        );
    }
}
