//! E8 — Application-level checkpoints bound log growth (Section 5.2).
//!
//! Claim: "A problem with the current algorithm is that the size of the
//! logs grows indefinitely. […]  a checkpoint of the application state can
//! substitute the associated prefix of the delivered message log."  We run
//! a long broadcast stream with and without application checkpoints and
//! sample the stable-storage footprint over time.

use abcast_core::{Cluster, ClusterConfig};
use abcast_types::{ProcessId, ProtocolConfig, SimDuration};

use crate::report::{fmt_f64, Table};

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let messages = if quick { 80 } else { 600 };
    let sample_every = messages / 8;

    let mut table = Table::new(
        "E8",
        "stable-storage footprint growth with and without application checkpoints (§5.2)",
        &[
            "variant",
            "messages",
            "final footprint (bytes)",
            "max footprint (bytes)",
            "footprint / message (bytes)",
            "app checkpoints taken",
        ],
    );

    for (label, app_checkpoints) in [
        ("no application checkpoints", false),
        ("application checkpoints every 100 ms", true),
    ] {
        let protocol = ProtocolConfig::alternative()
            .with_application_checkpoints(app_checkpoints)
            .with_checkpoint_period(SimDuration::from_millis(100));
        let mut cluster = Cluster::new(
            ClusterConfig::basic(3)
                .with_seed(808)
                .with_protocol(protocol),
        );

        let mut max_footprint = 0u64;
        let mut ids = Vec::new();
        for i in 0..messages {
            let sender = ProcessId::new((i % 3) as u32);
            if let Some(id) = cluster.broadcast(sender, vec![i as u8; 48]) {
                ids.push(id);
            }
            cluster.run_for(SimDuration::from_millis(4));
            if sample_every > 0 && i % sample_every == 0 {
                max_footprint = max_footprint.max(cluster.sim().storage().total_footprint_bytes());
            }
        }
        let everyone: Vec<ProcessId> = cluster.processes().iter().collect();
        assert!(
            cluster.run_until_delivered(&everyone, &ids, cluster.now() + SimDuration::from_secs(60)),
            "E8 load must complete"
        );
        // Let a final checkpoint pass truncate what it can.
        cluster.run_for(SimDuration::from_millis(400));
        let final_footprint = cluster.sim().storage().total_footprint_bytes();
        max_footprint = max_footprint.max(final_footprint);
        let checkpoints = cluster
            .sim()
            .actor(ProcessId::new(0))
            .map(|a| a.metrics().app_checkpoints_taken)
            .unwrap_or(0);

        table.push_row(vec![
            label.to_string(),
            messages.to_string(),
            final_footprint.to_string(),
            max_footprint.to_string(),
            fmt_f64(final_footprint as f64 / messages as f64),
            checkpoints.to_string(),
        ]);
    }
    table.note(
        "without application checkpoints the per-instance consensus records are retained \
         forever and the footprint grows linearly with the history; with them, old records \
         are discarded (Figure 4, line c) and the footprint stabilises around the working set",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn application_checkpoints_shrink_the_final_footprint() {
        let table = super::run(true);
        let without: u64 = table.rows[0][2].parse().expect("numeric");
        let with: u64 = table.rows[1][2].parse().expect("numeric");
        assert!(
            with < without,
            "checkpointed footprint ({with}) must be below unbounded footprint ({without})"
        );
        let checkpoints: u64 = table.rows[1][5].parse().expect("numeric");
        assert!(checkpoints > 0, "checkpoints must actually have been taken");
    }
}
