//! E5 — Incremental logging reduces bytes written (Section 5.5).
//!
//! Claim: "When logging a queue or a set (such as the Unordered set) only
//! its new part (with respect to the previous logging) has to be logged."
//! We run the alternative protocol (which logs the `Unordered` set on every
//! `A-broadcast`) with full-value logging and with incremental logging and
//! compare bytes written and write operations.

use abcast_core::ClusterConfig;
use abcast_types::{ProtocolConfig, SimDuration};

use crate::report::{fmt_f64, Table};
use crate::workload::run_load;

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let messages = if quick { 50 } else { 300 };
    let payload = 64;

    let mut table = Table::new(
        "E5",
        "full-value vs incremental logging of the Unordered set (§5.5)",
        &[
            "variant",
            "messages",
            "write ops",
            "bytes written",
            "bytes / message",
        ],
    );

    for (label, incremental) in [("full-value logging", false), ("incremental logging", true)] {
        let protocol = ProtocolConfig::alternative().with_incremental_logging(incremental);
        let (cluster, result) = run_load(
            ClusterConfig::basic(3)
                .with_seed(505)
                .with_protocol(protocol),
            messages,
            payload,
            SimDuration::from_millis(2),
        );
        assert!(result.all_delivered, "E5 load must complete");
        table.push_row(vec![
            label.to_string(),
            messages.to_string(),
            result.storage.write_ops().to_string(),
            result.storage.bytes_written.to_string(),
            fmt_f64(result.storage.bytes_written as f64 / messages as f64),
        ]);
        drop(cluster);
    }
    table.note(
        "full-value logging rewrites the whole pending set on every broadcast, so its cost \
         grows with the set size; incremental logging appends only the new message",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn incremental_logging_writes_fewer_bytes() {
        let table = super::run(true);
        let full_bytes: u64 = table.rows[0][3].parse().expect("numeric");
        let incr_bytes: u64 = table.rows[1][3].parse().expect("numeric");
        assert!(
            incr_bytes < full_bytes,
            "incremental ({incr_bytes}) must write fewer bytes than full ({full_bytes})"
        );
    }
}
