//! E4 — Batching improves throughput (Section 5.4).
//!
//! Claim: "For better throughput, it may be interesting to let the
//! application propose batches of messages to the Atomic Broadcast
//! protocol, which are then proposed in batch to a single instance of
//! Consensus."  We push a fixed offered load through the cluster with
//! different maximum batch sizes (and the blocking, unbatched basic
//! protocol) and report rounds used, throughput and delivery latency.

use abcast_core::ClusterConfig;
use abcast_types::{BatchingPolicy, ProtocolConfig, SimDuration};

use crate::report::{fmt_f64, Table};
use crate::workload::run_load;

struct Variant {
    label: &'static str,
    protocol: ProtocolConfig,
}

fn variants() -> Vec<Variant> {
    let mut variants = vec![Variant {
        label: "basic, wait-for-agreed (unbatched submit)",
        protocol: ProtocolConfig::basic(),
    }];
    for max_batch in [1usize, 8, 64, 256] {
        let label: &'static str = match max_batch {
            1 => "early-return, batch <= 1",
            8 => "early-return, batch <= 8",
            64 => "early-return, batch <= 64",
            _ => "early-return, batch <= 256",
        };
        variants.push(Variant {
            label,
            protocol: ProtocolConfig::alternative()
                .with_batching(BatchingPolicy::EarlyReturn { max_batch }),
        });
    }
    variants
}

/// Runs the experiment.
pub fn run(quick: bool) -> Table {
    let messages = if quick { 60 } else { 400 };
    // A tight submission gap creates contention so batching matters.
    let gap = SimDuration::from_micros(500);

    let mut table = Table::new(
        "E4",
        "throughput and latency vs batching (§5.4)",
        &[
            "variant",
            "messages",
            "rounds used",
            "msgs / round",
            "throughput (msg/s)",
            "mean latency (ms)",
            "p99 latency (ms)",
        ],
    );

    for variant in &variants() {
        let (cluster, result) = run_load(
            ClusterConfig::basic(3)
                .with_seed(404)
                .with_protocol(variant.protocol.clone()),
            messages,
            64,
            gap,
        );
        assert!(result.all_delivered, "E4 load must complete");
        let msgs_per_round = messages as f64 / result.rounds.max(1) as f64;
        table.push_row(vec![
            variant.label.to_string(),
            messages.to_string(),
            result.rounds.to_string(),
            fmt_f64(msgs_per_round),
            fmt_f64(result.throughput_msgs_per_sec),
            fmt_f64(result.mean_latency_ms),
            fmt_f64(result.p99_latency_ms),
        ]);
        drop(cluster);
    }
    table.note(
        "larger batches use fewer consensus instances per message, raising throughput; \
         the basic protocol orders whatever is pending, so under a continuous load it \
         batches implicitly as well",
    );
    table
}

#[cfg(test)]
mod tests {
    #[test]
    fn bigger_batches_use_fewer_rounds() {
        let table = super::run(true);
        // Row 1 = batch<=1, last row = batch<=256.  Guard the sampling —
        // an empty or truncated table must fail with a message, not panic
        // on an unchecked unwrap.
        let (Some(small_row), Some(large_row)) = (table.rows.get(1), table.rows.last()) else {
            panic!("E4 produced too few rows: {:?}", table.rows);
        };
        let rounds_small: u64 = small_row[2].parse().expect("numeric");
        let rounds_large: u64 = large_row[2].parse().expect("numeric");
        assert!(
            rounds_large <= rounds_small,
            "batch<=256 should use no more rounds ({rounds_large}) than batch<=1 ({rounds_small})"
        );
        let throughput_small: f64 = small_row[4].parse().expect("numeric");
        let throughput_large: f64 = large_row[4].parse().expect("numeric");
        assert!(
            throughput_large >= throughput_small,
            "batching should not reduce throughput"
        );
    }
}
