//! E16 — Segmented WAL: rotation + background compaction under load.
//!
//! The segmented rework of the WAL backend (active segment rotated at a
//! size threshold, sealed segments merged into a compacted base by a
//! background worker) makes three promises this experiment measures:
//!
//! * **flat fsyncs per message** — rotation adds one durability barrier
//!   per *segment*, not per commit, so the group-commit amortization is
//!   preserved as the message count sweeps 10³ → 10⁶;
//! * **bounded recovery reopen** — with checkpoints bounding the live
//!   state, compaction bounds the on-disk journal, so reopen (replay)
//!   time stops growing with history instead of scaling with every
//!   message ever committed;
//! * **no write-path stalls** — the p99 group-commit latency of a run
//!   with forced background compaction stays within noise of a run with
//!   compaction disabled: the write path only ever pays the O(1) seal.
//!
//! The workload is storage-level (no cluster): each message commits one
//! protocol-step-shaped `WriteBatch` (an agreed delta append, an
//! unordered-increment append, a round-slot store), and every
//! [`CHECKPOINT_EVERY`] messages a checkpoint batch overwrites the
//! snapshot slot, truncates both logs and calls `note_checkpoint` — the
//! hook the protocol's checkpoint task uses to nudge compaction.
//!
//! The `exp_wal` binary emits `BENCH_wal.json` so the repository carries
//! the perf trajectory.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use abcast_storage::{keys, StableStorage, StorageKey, WalStorage, WriteBatch};
use abcast_types::Round;

use crate::report::{fmt_f64, Table};

/// Group-commit window (matches the protocol's default).
const GROUP_WINDOW: usize = 8;
/// Messages per emulated checkpoint; bounds the live state, which is what
/// lets compaction bound the disk.
const CHECKPOINT_EVERY: usize = 64;
/// Segment size of the compacting runs — small enough that every sweep
/// point rotates and compacts many times.
const SEGMENT_BYTES: u64 = 16 * 1024;

/// One measured run: a message count × compaction mode.
#[derive(Clone, Debug)]
pub struct WalRow {
    /// `segmented` (rotation + background compaction forced) or
    /// `monolithic` (single journal, compaction disabled — the baseline).
    pub mode: &'static str,
    /// Messages committed.
    pub messages: usize,
    /// Durability barriers across the run.
    pub sync_ops: u64,
    /// Barriers per message — must stay flat across the sweep.
    pub syncs_per_msg: f64,
    /// Segment seals during the run.
    pub rotations: u64,
    /// Background compaction passes during the run.
    pub compactions: u64,
    /// Journal bytes on disk after the run (base + sealed + active).
    pub disk_bytes: u64,
    /// Median group-commit latency (µs).
    pub p50_commit_micros: u64,
    /// p99 group-commit latency (µs) — the stall detector.
    pub p99_commit_micros: u64,
    /// Wall-clock time to reopen (replay) the journal after the run.
    pub reopen_micros: u128,
}

fn temp_base(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "abcast-e16-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx]
}

/// Runs one sweep point: `messages` protocol-step-shaped commits against a
/// WAL configured for `mode`, measuring barriers, latency percentiles and
/// the reopen cost afterwards.
fn measure(mode: &'static str, messages: usize) -> WalRow {
    let base = temp_base(&format!("{mode}-{messages}"));
    let _ = fs::remove_dir_all(&base);
    fs::create_dir_all(&base).expect("bench dir creates");
    let path = base.join("journal.wal");

    let storage = match mode {
        "segmented" => WalStorage::open(&path)
            .expect("wal opens")
            .with_group_window(GROUP_WINDOW)
            .with_segment_bytes(SEGMENT_BYTES)
            .with_compact_threshold(1), // clamped to the floor: compact eagerly
        _ => WalStorage::open(&path)
            .expect("wal opens")
            .with_group_window(GROUP_WINDOW)
            .with_segment_bytes(u64::MAX)
            .with_compact_threshold(u64::MAX),
    };

    let round_slot = StorageKey::new("abcast/k");
    let payload = vec![0xE1_u8; 32];
    let mut latencies = Vec::with_capacity(messages);
    for i in 0..messages {
        let mut batch = WriteBatch::new();
        batch.append(&keys::agreed_delta(), &payload);
        batch.append(&keys::unordered_incremental(), &payload);
        batch.store(&round_slot, &(i as u64).to_le_bytes());
        let started = Instant::now();
        storage.commit_batch(batch).expect("step batch commits");
        latencies.push(started.elapsed().as_micros() as u64);

        if (i + 1) % CHECKPOINT_EVERY == 0 {
            // The checkpoint task: the (k, Agreed) snapshot replaces the
            // delta log, the unordered log restarts, and the storage
            // learns the persisted round (the compaction nudge).
            let mut ckpt = WriteBatch::new();
            ckpt.store(&keys::agreed_checkpoint(), &payload);
            ckpt.remove(&keys::agreed_delta());
            ckpt.remove(&keys::unordered_incremental());
            storage.commit_batch(ckpt).expect("checkpoint commits");
            storage.note_checkpoint(Round::new(((i + 1) / CHECKPOINT_EVERY) as u64));
        }
    }
    storage.quiesce().expect("background compaction settles");

    let snapshot = storage.metrics().snapshot();
    let rotations = storage.rotations();
    let compactions = storage.compactions();
    let disk_bytes = storage.footprint_bytes();
    drop(storage);

    let started = Instant::now();
    let reopened = WalStorage::open(&path).expect("journal replays");
    let reopen_micros = started.elapsed().as_micros();
    assert_eq!(
        reopened
            .load(&round_slot)
            .expect("round slot loads")
            .expect("round slot exists")
            .as_ref(),
        ((messages - 1) as u64).to_le_bytes(),
        "replay must surface the last committed round"
    );
    drop(reopened);
    let _ = fs::remove_dir_all(&base);

    latencies.sort_unstable();
    WalRow {
        mode,
        messages,
        sync_ops: snapshot.sync_ops,
        syncs_per_msg: snapshot.sync_ops as f64 / messages as f64,
        rotations,
        compactions,
        disk_bytes,
        p50_commit_micros: percentile(&latencies, 50),
        p99_commit_micros: percentile(&latencies, 99),
        reopen_micros,
    }
}

/// Runs the sweep and returns one row per mode × message count.
pub fn run_rows(quick: bool) -> Vec<WalRow> {
    let sweep: &[usize] = if quick {
        &[1_000, 10_000]
    } else {
        &[1_000, 10_000, 100_000, 1_000_000]
    };
    let mut rows = Vec::new();
    for &messages in sweep {
        rows.push(measure("segmented", messages));
        rows.push(measure("monolithic", messages));
    }
    rows
}

/// Runs the experiment and renders its table.
pub fn run(quick: bool) -> Table {
    table_from_rows(&run_rows(quick))
}

/// Renders measured rows as the E16 report table.
pub fn table_from_rows(rows: &[WalRow]) -> Table {
    let mut table = Table::new(
        "E16",
        "segmented WAL: rotation + background compaction under a message-count sweep",
        &[
            "mode",
            "messages",
            "fsyncs",
            "fsyncs / msg",
            "rotations",
            "compactions",
            "disk bytes",
            "p50 commit (µs)",
            "p99 commit (µs)",
            "reopen (µs)",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.mode.to_string(),
            row.messages.to_string(),
            row.sync_ops.to_string(),
            fmt_f64(row.syncs_per_msg),
            row.rotations.to_string(),
            row.compactions.to_string(),
            row.disk_bytes.to_string(),
            row.p50_commit_micros.to_string(),
            row.p99_commit_micros.to_string(),
            row.reopen_micros.to_string(),
        ]);
    }
    table.note(format!(
        "segmented = {SEGMENT_BYTES}-byte segments, minimum compaction threshold (compaction \
         forced); monolithic = one journal, compaction disabled (the pre-segmentation shape)"
    ));
    table.note(format!(
        "each message commits one protocol-step batch under a {GROUP_WINDOW}-commit group \
         window; every {CHECKPOINT_EVERY} messages a checkpoint batch truncates the logs and \
         note_checkpoint() nudges the compactor"
    ));
    table.note(
        "the three gated claims: fsyncs/msg flat across the sweep, segmented reopen bounded \
         (compaction bounds the disk), segmented p99 commit latency within noise of monolithic \
         (the write path never blocks on a rewrite, only the O(1) seal)",
    );
    table
}

/// Serializes the rows as the `BENCH_wal.json` baseline.
pub fn to_json(rows: &[WalRow], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"E16\",");
    let _ = writeln!(
        out,
        "  \"title\": \"segmented WAL fsyncs/msg, commit latency and reopen time across a \
         message-count sweep\","
    );
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"group_window\": {GROUP_WINDOW},");
    let _ = writeln!(out, "  \"segment_bytes\": {SEGMENT_BYTES},");
    let _ = writeln!(out, "  \"checkpoint_every\": {CHECKPOINT_EVERY},");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"mode\": \"{}\", \"messages\": {}, \"sync_ops\": {}, \
             \"syncs_per_msg\": {}, \"rotations\": {}, \"compactions\": {}, \
             \"disk_bytes\": {}, \"p50_commit_micros\": {}, \"p99_commit_micros\": {}, \
             \"reopen_micros\": {}}}",
            row.mode,
            row.messages,
            row.sync_ops,
            fmt_f64(row.syncs_per_msg),
            row.rotations,
            row.compactions,
            row.disk_bytes,
            row.p50_commit_micros,
            row.p99_commit_micros,
            row.reopen_micros,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of<'a>(rows: &'a [WalRow], mode: &str) -> Vec<&'a WalRow> {
        rows.iter().filter(|r| r.mode == mode).collect()
    }

    #[test]
    fn fsyncs_per_message_stay_flat_and_compaction_bounds_the_disk() {
        let rows = run_rows(true);
        assert_eq!(rows.len(), 4);

        for mode in ["segmented", "monolithic"] {
            let of_mode = rows_of(&rows, mode);
            let per_msg: Vec<f64> = of_mode.iter().map(|r| r.syncs_per_msg).collect();
            let (min, max) = per_msg
                .iter()
                .fold((f64::MAX, 0.0_f64), |(lo, hi), &v| (lo.min(v), hi.max(v)));
            assert!(
                max <= min * 1.5,
                "{mode}: fsyncs/msg must stay flat across the sweep: {per_msg:?}"
            );
        }

        let segmented = rows_of(&rows, "segmented");
        for row in &segmented {
            assert!(row.rotations > 0, "segmented rows must rotate: {row:?}");
            assert!(row.compactions > 0, "segmented rows must compact: {row:?}");
        }
        // Checkpoints bound the live state, compaction bounds the disk:
        // 10x the messages must not mean 10x the journal.
        let small = segmented[0].disk_bytes.max(1);
        let large = segmented[segmented.len() - 1].disk_bytes;
        assert!(
            large <= small * 4,
            "compaction must bound the journal: {small} -> {large} bytes"
        );
    }

    #[test]
    fn forced_compaction_keeps_p99_commit_latency_within_noise() {
        let rows = run_rows(true);
        // Compare at the largest sweep point, where the segmented run has
        // compacted many times.  The bound is deliberately loose (5x):
        // CI boxes are noisy, and the failure mode this guards against —
        // the write path blocking on a whole-journal rewrite — is orders
        // of magnitude, not a factor.
        let seg = rows_of(&rows, "segmented");
        let mono = rows_of(&rows, "monolithic");
        let seg_p99 = seg[seg.len() - 1].p99_commit_micros.max(1);
        let mono_p99 = mono[mono.len() - 1].p99_commit_micros.max(1);
        assert!(
            seg_p99 <= mono_p99 * 5,
            "forced background compaction must not stall the write path: \
             segmented p99 {seg_p99}µs vs monolithic p99 {mono_p99}µs"
        );
    }
}
