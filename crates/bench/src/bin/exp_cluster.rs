//! Experiment binary: regenerates the E15 cluster-size sweep and emits
//! the `BENCH_cluster.json` baseline.
//!
//! Pass `--quick` for a reduced sweep (`N ∈ {3, 5}`, used by CI) and
//! `--out <path>` to choose where the JSON baseline is written (default:
//! `BENCH_cluster.json` in the current directory).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());

    let rows = abcast_bench::experiments::e15_cluster::run_rows(quick);
    let table = abcast_bench::experiments::e15_cluster::table_from_rows(&rows);
    table.print();
    println!("{}", table.to_markdown());

    let json = abcast_bench::experiments::e15_cluster::to_json(&rows, quick);
    std::fs::write(&out, &json).expect("baseline JSON must be writable");
    println!("baseline written to {out}");
}
