//! Runs the entire experiment suite (E1–E12) and prints every table, in
//! both plain-text and markdown form.  Pass `--quick` for reduced sweeps.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let tables = abcast_bench::experiments::run_all(quick);
    for table in &tables {
        table.print();
    }
    println!("\n---- markdown ----\n");
    for table in &tables {
        println!("{}", table.to_markdown());
    }
}
