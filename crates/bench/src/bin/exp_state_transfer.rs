//! Experiment binary: regenerates the 03_state_transfer table (see EXPERIMENTS.md).
//!
//! Pass `--quick` for a reduced parameter sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = abcast_bench::experiments::e03_state_transfer::run(quick);
    table.print();
    println!("{}", table.to_markdown());
}
