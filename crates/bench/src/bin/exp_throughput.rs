//! Experiment binary: regenerates the 04_throughput table (see EXPERIMENTS.md).
//!
//! Pass `--quick` for a reduced parameter sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = abcast_bench::experiments::e04_throughput::run(quick);
    table.print();
    println!("{}", table.to_markdown());
}
