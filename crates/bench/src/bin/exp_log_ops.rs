//! Experiment binary: regenerates the 01_log_ops table (see EXPERIMENTS.md).
//!
//! Pass `--quick` for a reduced parameter sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = abcast_bench::experiments::e01_log_ops::run(quick);
    table.print();
    println!("{}", table.to_markdown());
}
