//! Experiment binary: regenerates the E13 zero-copy codec table and emits
//! the `BENCH_codec.json` baseline.
//!
//! Pass `--quick` for the reduced workload (used by CI) and `--out <path>`
//! to choose where the JSON baseline is written (default:
//! `BENCH_codec.json` in the current directory).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_codec.json".to_string());

    let (copy_rows, pipeline_rows) = abcast_bench::experiments::e13_codec::run_rows(quick);
    let table = abcast_bench::experiments::e13_codec::table_from_rows(&copy_rows, &pipeline_rows);
    table.print();
    println!("{}", table.to_markdown());

    let json = abcast_bench::experiments::e13_codec::to_json(&copy_rows, &pipeline_rows, quick);
    std::fs::write(&out, &json).expect("baseline JSON must be writable");
    println!("baseline written to {out}");
}
