//! Experiment binary: regenerates the 08_log_growth table (see EXPERIMENTS.md).
//!
//! Pass `--quick` for a reduced parameter sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = abcast_bench::experiments::e08_log_growth::run(quick);
    table.print();
    println!("{}", table.to_markdown());
}
