//! Experiment binary: regenerates the E16 segmented-WAL table and emits
//! the `BENCH_wal.json` baseline.
//!
//! Pass `--quick` for a reduced sweep (used by CI) and `--out <path>` to
//! choose where the JSON baseline is written (default: `BENCH_wal.json`
//! in the current directory).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_wal.json".to_string());

    let rows = abcast_bench::experiments::e16_wal::run_rows(quick);
    let table = abcast_bench::experiments::e16_wal::table_from_rows(&rows);
    table.print();
    println!("{}", table.to_markdown());

    let json = abcast_bench::experiments::e16_wal::to_json(&rows, quick);
    std::fs::write(&out, &json).expect("baseline JSON must be writable");
    println!("baseline written to {out}");
}
