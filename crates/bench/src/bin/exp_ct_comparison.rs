//! Experiment binary: regenerates the 07_ct_comparison table (see EXPERIMENTS.md).
//!
//! Pass `--quick` for a reduced parameter sweep.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let table = abcast_bench::experiments::e07_ct_comparison::run(quick);
    table.print();
    println!("{}", table.to_markdown());
}
