//! Tabular experiment reports.
//!
//! Every experiment produces one [`Table`]; the binaries print it to the
//! terminal and `EXPERIMENTS.md` records the numbers measured on the
//! reference machine next to the paper's qualitative expectation.

use std::fmt::Write as _;

/// One experiment's results: a titled table plus free-form notes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier, e.g. `"E1"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Interpretation notes appended below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with the given identifier, title and columns.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row; the number of cells must match the columns.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width must match column count"
        );
        self.rows.push(cells);
    }

    /// Appends an interpretation note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{}: {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join("  "));
        let underline: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "  {}", underline.join("  "));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}: {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n*{note}*");
        }
        out
    }

    /// Prints the plain-text rendering to standard output.
    pub fn print(&self) {
        println!("{}", self.to_text());
    }
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt_f64(value: f64) -> String {
    if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("E0", "sample", &["a", "long-column", "c"]);
        t.push_row(vec!["1".into(), "2".into(), "3".into()]);
        t.push_row(vec!["10".into(), "twenty".into(), "30".into()]);
        t.note("just a sample");
        t
    }

    #[test]
    fn text_rendering_contains_all_cells_and_notes() {
        let text = sample().to_text();
        assert!(text.contains("E0: sample"));
        assert!(text.contains("long-column"));
        assert!(text.contains("twenty"));
        assert!(text.contains("note: just a sample"));
    }

    #[test]
    fn markdown_rendering_is_a_table() {
        let md = sample().to_markdown();
        assert!(md.contains("### E0: sample"));
        assert!(md.contains("| a | long-column | c |"));
        assert!(md.contains("| 10 | twenty | 30 |"));
        assert!(md.contains("*just a sample*"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_are_rejected() {
        let mut t = Table::new("E0", "sample", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(1234.5), "1234.5");
        assert_eq!(Table::new("x", "y", &["a"]).len(), 0);
        assert!(Table::new("x", "y", &["a"]).is_empty());
    }
}
