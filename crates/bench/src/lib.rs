//! Experiment harness reproducing every measurable claim of the paper.
//!
//! The paper (ICDCS 2000) has no quantitative evaluation section — its five
//! figures are interfaces and pseudocode — so the reproduction turns each
//! *claim* into a measured experiment (see `DESIGN.md` §3 and
//! `EXPERIMENTS.md` for the index):
//!
//! | Id | Claim | Module |
//! |----|-------|--------|
//! | E1 | §4.3 minimal logging | [`experiments::e01_log_ops`] |
//! | E2 | §5.1 checkpoints shorten recovery | [`experiments::e02_recovery`] |
//! | E3 | §5.3 state transfer for lagging processes | [`experiments::e03_state_transfer`] |
//! | E4 | §5.4 batching improves throughput | [`experiments::e04_throughput`] |
//! | E5 | §5.5 incremental logging reduces bytes | [`experiments::e05_incremental`] |
//! | E6 | §2.2/§4 liveness & safety under faults | [`experiments::e06_faults`] |
//! | E7 | §5.6 reduces to Chandra–Toueg when crash-stop | [`experiments::e07_ct_comparison`] |
//! | E8 | §5.2 application checkpoints bound log growth | [`experiments::e08_log_growth`] |
//! | E9 | §6.2 deferred-update replication | [`experiments::e09_deferred`] |
//! | E10 | §6.3 quorum-based replication | [`experiments::e10_quorum`] |
//!
//! Every experiment produces a [`Table`]; the `exp_*` binaries print them
//! and `exp_all` regenerates the whole evaluation.  The Criterion benches
//! under `benches/` time the same workloads in their "quick" form.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod workload;

pub use report::Table;
pub use workload::{drive_load, LoadResult};
