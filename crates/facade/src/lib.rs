//! Facade crate: the whole crash-recovery atomic broadcast stack behind one
//! dependency.
//!
//! This is a reproduction of *Rodrigues & Raynal, "Atomic Broadcast in
//! Asynchronous Crash-Recovery Distributed Systems"* (ICDCS 2000).  The
//! individual layers live in their own crates and are re-exported here:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`types`] | `abcast-types` | identities, rounds, configuration, codec |
//! | [`storage`] | `abcast-storage` | stable storage (`log`/`retrieve`) |
//! | [`net`] | `abcast-net` | fair-lossy transport, actor runtimes |
//! | [`sim`] | `abcast-sim` | deterministic discrete-event simulator |
//! | [`fd`] | `abcast-fd` | crash-recovery failure detectors |
//! | [`consensus`] | `abcast-consensus` | the Consensus black box |
//! | [`core`] | `abcast-core` | **the paper's protocol** |
//! | [`replication`] | `abcast-replication` | replicated services (Section 6) |
//!
//! The most commonly used items are re-exported at the top level.
//!
//! ```
//! use crash_recovery_abcast::{Cluster, ClusterConfig, ProcessId, SimTime};
//!
//! let mut cluster = Cluster::new(ClusterConfig::alternative(3));
//! cluster.broadcast(ProcessId::new(0), b"update".to_vec());
//! assert!(cluster.run_until_all_delivered(SimTime::from_micros(5_000_000)));
//! cluster.assert_properties();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use abcast_consensus as consensus;
pub use abcast_core as core;
pub use abcast_fd as fd;
pub use abcast_net as net;
pub use abcast_replication as replication;
pub use abcast_sim as sim;
pub use abcast_storage as storage;
pub use abcast_types as types;

pub use abcast_core::{
    AtomicBroadcast, Cluster, ClusterConfig, ConsensusConfig, DeliveryEvent, FramedAbcast,
    ProtocolConfig, TcpCluster,
};
pub use abcast_net::{
    Actor, ActorContext, FramedActor, LinkConfig, TcpConfig, TcpRuntime, ThreadRuntime, TimerId,
};
pub use abcast_replication::{Bank, CertifyingDatabase, KvCommand, KvStore, Replica, Transaction};
pub use abcast_sim::{FaultPlan, SimConfig, Simulation};
pub use abcast_storage::{
    FileStorage, InMemoryStorage, StorageRegistry, WalStorage, WriteBatch,
};
pub use abcast_types::{
    AppMessage, MsgId, Payload, ProcessId, ProcessSet, Round, SimDuration, SimTime,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_usable() {
        let set = crate::ProcessSet::new(3);
        assert_eq!(set.majority(), 2);
        let config = crate::ClusterConfig::basic(3);
        assert_eq!(config.processes, 3);
    }
}
