//! The event queue of the discrete-event simulator.
//!
//! Every future occurrence — a message delivery, a timer expiry, a crash, a
//! recovery, a client request — is an [`Event`] scheduled at a virtual
//! [`SimTime`].  Events with equal timestamps are processed in insertion
//! order, which (together with the seeded RNG) makes whole runs
//! reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use bytes::Bytes;

use abcast_net::TimerId;
use abcast_types::{ProcessId, SimTime};

/// A single scheduled occurrence.
#[derive(Debug, Clone)]
pub enum Event<M> {
    /// A transport message from `from` arrives at `to`.
    Deliver {
        /// Destination process.
        to: ProcessId,
        /// Originating process.
        from: ProcessId,
        /// The message itself.
        msg: M,
    },
    /// A timer armed by process `process` fires.
    Timer {
        /// The process whose timer fires.
        process: ProcessId,
        /// Which timer fires.
        timer: TimerId,
        /// Arming generation; stale generations are ignored (the timer was
        /// re-armed or cancelled in the meantime).
        generation: u64,
    },
    /// Process `process` crashes, losing its volatile memory.
    Crash {
        /// The crashing process.
        process: ProcessId,
    },
    /// Process `process` recovers and re-runs its recovery procedure.
    Recover {
        /// The recovering process.
        process: ProcessId,
    },
    /// The local application of `process` invokes the protocol with
    /// `payload` (for atomic broadcast: `A-broadcast(payload)`).
    ClientRequest {
        /// The process receiving the request.
        process: ProcessId,
        /// Opaque request payload.
        payload: Bytes,
    },
}

impl<M> Event<M> {
    /// The process this event concerns.
    pub fn process(&self) -> ProcessId {
        match self {
            Event::Deliver { to, .. } => *to,
            Event::Timer { process, .. }
            | Event::Crash { process }
            | Event::Recover { process }
            | Event::ClientRequest { process, .. } => *process,
        }
    }

    /// Short label used in traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Deliver { .. } => "deliver",
            Event::Timer { .. } => "timer",
            Event::Crash { .. } => "crash",
            Event::Recover { .. } => "recover",
            Event::ClientRequest { .. } => "client-request",
        }
    }
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}

impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Time-ordered queue of scheduled events.
pub struct EventQueue<M> {
    heap: BinaryHeap<Scheduled<M>>,
    seq: u64,
    scheduled_total: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            scheduled_total: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` to occur at `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event<M>) {
        self.seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
    }

    /// Removes and returns the earliest event, with its scheduled time.
    pub fn pop(&mut self) -> Option<(SimTime, Event<M>)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Time of the earliest scheduled event, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no event is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn crash(p: u32) -> Event<()> {
        Event::Crash {
            process: ProcessId::new(p),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), crash(3));
        q.schedule(t(10), crash(1));
        q.schedule(t(20), crash(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(at, _)| at.as_micros())
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), crash(0));
        q.schedule(t(5), crash(1));
        q.schedule(t(5), crash(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| e.process().as_u32())
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn next_time_and_len_reflect_contents() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_time(), None);
        q.schedule(t(40), crash(0));
        q.schedule(t(15), crash(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_time(), Some(t(15)));
        q.pop();
        assert_eq!(q.next_time(), Some(t(40)));
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn event_accessors() {
        let e: Event<u32> = Event::Deliver {
            to: ProcessId::new(2),
            from: ProcessId::new(1),
            msg: 9,
        };
        assert_eq!(e.process(), ProcessId::new(2));
        assert_eq!(e.kind(), "deliver");
        let e: Event<u32> = Event::ClientRequest {
            process: ProcessId::new(0),
            payload: Bytes::from_static(b"x"),
        };
        assert_eq!(e.kind(), "client-request");
        assert_eq!(
            Event::<u32>::Timer {
                process: ProcessId::new(1),
                timer: TimerId::new(2),
                generation: 3
            }
            .kind(),
            "timer"
        );
        assert_eq!(crash(1).kind(), "crash");
        assert_eq!(
            Event::<()>::Recover {
                process: ProcessId::new(1)
            }
            .kind(),
            "recover"
        );
    }
}
