//! Deterministic nemesis fuzzing: seeded fault schedules and the campaign
//! runner.
//!
//! Per seed, [`NemesisPlan::generate`] drives a `ChaCha8Rng` to compose a
//! random schedule from the fault vocabulary — process crash/recovery
//! churn and oscillation (via [`FaultPlan`]), full and asymmetric network
//! partitions, link-level loss/delay/duplication bursts, whole-deployment
//! restarts, torn WAL tails on recovery, and storage faults (disk-full,
//! short-write, fsync-failure, read errors at seeded operation indices).
//! The plan is pure data: a protocol-specific harness (see
//! `abcast_core::fuzz`) executes it against a simulation and checks the
//! broadcast properties, so *everything* about a run derives from the seed
//! and a failing seed reproduces from its `sim_fuzz --seed <s>` line
//! alone.
//!
//! [`run_campaign`] sweeps a block of seeds under a wall-clock budget with
//! a worker pool (each worker runs whole seeds, so parallelism cannot
//! perturb per-seed determinism), classifies which fault families fired,
//! and aggregates per-family coverage — the FoundationDB-style discipline:
//! thousands of adversarial schedules, every failure a one-line repro.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use std::time::Instant; // xlint:allow(D1) — wall-clock campaign budget only; per-seed behaviour derives from the seed

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use abcast_net::LinkConfig;
use abcast_storage::{FaultSchedule, WriteFaultKind};
use abcast_types::{ProcessId, SimDuration, SimTime};

use crate::faults::FaultPlan;

/// The fault families a [`NemesisPlan`] composes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultFamily {
    /// Process crashes with later recoveries (crash/recovery churn).
    Crash,
    /// A process oscillating between up and down.
    Oscillation,
    /// A full (symmetric) partition splitting the deployment in two.
    Partition,
    /// A single directed link cut (A→B dropped, B→A delivered).
    AsymmetricPartition,
    /// A window of elevated message loss.
    LinkLossBurst,
    /// A window of inflated message delays (reordering pressure).
    LinkDelayBurst,
    /// A window of elevated message duplication.
    Duplication,
    /// A whole-deployment restart (datacenter power cycle).
    DeploymentRestart,
    /// Storage faults: disk-full / short-write / fsync-failure / read
    /// errors at seeded operation indices.
    StorageFault,
    /// A torn WAL tail appended before a recovery replay.
    TornWalTail,
}

impl FaultFamily {
    /// Every family, in a fixed order (coverage reports iterate this).
    pub const ALL: [FaultFamily; 10] = [
        FaultFamily::Crash,
        FaultFamily::Oscillation,
        FaultFamily::Partition,
        FaultFamily::AsymmetricPartition,
        FaultFamily::LinkLossBurst,
        FaultFamily::LinkDelayBurst,
        FaultFamily::Duplication,
        FaultFamily::DeploymentRestart,
        FaultFamily::StorageFault,
        FaultFamily::TornWalTail,
    ];

    /// Stable snake-case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultFamily::Crash => "crash",
            FaultFamily::Oscillation => "oscillation",
            FaultFamily::Partition => "partition",
            FaultFamily::AsymmetricPartition => "asymmetric_partition",
            FaultFamily::LinkLossBurst => "link_loss_burst",
            FaultFamily::LinkDelayBurst => "link_delay_burst",
            FaultFamily::Duplication => "duplication",
            FaultFamily::DeploymentRestart => "deployment_restart",
            FaultFamily::StorageFault => "storage_fault",
            FaultFamily::TornWalTail => "torn_wal_tail",
        }
    }
}

impl fmt::Display for FaultFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One nemesis action at a point in virtual time, to be applied at (or
/// just after) `at` by the harness driving the simulation.
#[derive(Clone, Debug, PartialEq)]
pub enum NemesisAction {
    /// Cut the directed link `from → to`.
    Cut {
        /// Sender side of the cut.
        from: ProcessId,
        /// Receiver side of the cut.
        to: ProcessId,
    },
    /// Restore the directed link `from → to`.
    Heal {
        /// Sender side of the healed link.
        from: ProcessId,
        /// Receiver side of the healed link.
        to: ProcessId,
    },
    /// Replace the link configuration (a loss/delay/duplication burst
    /// starts or ends; "ends" restores the baseline configuration).
    SetLink(LinkConfig),
    /// Crash every process at once and boot them all again over their
    /// surviving stable storage.
    RestartDeployment,
}

/// A [`NemesisAction`] with its scheduled virtual time.
#[derive(Clone, Debug, PartialEq)]
pub struct NemesisMoment {
    /// When to apply the action.
    pub at: SimTime,
    /// What to do.
    pub action: NemesisAction,
}

/// A complete seeded fault schedule for one fuzz run.
///
/// Everything is derived from `seed` by [`NemesisPlan::generate`]; the
/// plan itself is inert data that a harness executes.
#[derive(Clone, Debug)]
pub struct NemesisPlan {
    /// The seed the plan was generated from.
    pub seed: u64,
    /// Number of processes in the deployment (drawn from the seed).
    pub processes: usize,
    /// End of the fault window; after this the harness heals everything
    /// and lets the protocol converge.
    pub horizon: SimTime,
    /// Baseline link configuration for the whole run.
    pub baseline_link: LinkConfig,
    /// Crash/recovery/oscillation schedule.
    pub faults: FaultPlan,
    /// Link cuts / heals / bursts / restarts, time-ordered.
    pub moments: Vec<NemesisMoment>,
    /// Per-process storage fault schedules (empty schedule = healthy
    /// disk).
    pub storage_faults: Vec<FaultSchedule>,
    /// Use a WAL-backed deployment and append a torn tail to one journal
    /// before the reopen at each deployment restart.
    pub torn_wal: bool,
    /// The fault families this plan includes (i.e. that will fire when the
    /// plan executes; storage faults are confirmed against the injection
    /// counters by the harness).
    pub families: Vec<FaultFamily>,
}

impl NemesisPlan {
    /// Composes the fault schedule for `seed`.
    pub fn generate(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let processes = rng.gen_range(3..=5usize);
        let horizon_ms = rng.gen_range(900..=1600u64);
        let horizon = SimTime::from_micros(horizon_ms * 1000);
        let mut families = Vec::new();
        let mut moments: Vec<NemesisMoment> = Vec::new();

        // Baseline network: mostly LAN-ish, sometimes an adversarial WAN
        // (loss + duplication + heavy reordering jitter at all times).
        let baseline_link = if rng.gen_bool(0.3) {
            LinkConfig::lossy_wan()
        } else {
            LinkConfig::lan()
        };

        let t = |ms: u64| SimTime::from_micros(ms * 1000);
        // A random window inside the fault phase of the run.
        let window = |rng: &mut ChaCha8Rng| {
            let start = rng.gen_range(horizon_ms / 10..=horizon_ms / 2);
            let len = rng.gen_range(horizon_ms / 10..=horizon_ms / 3);
            (t(start), t((start + len).min(horizon_ms)))
        };

        // --- process crash/recovery churn -----------------------------
        let mut faults = FaultPlan::none();
        if rng.gen_bool(0.55) {
            families.push(FaultFamily::Crash);
            let n_crashes = rng.gen_range(1..=2usize);
            for _ in 0..n_crashes {
                let p = ProcessId::new(rng.gen_range(0..processes as u32));
                let at = t(rng.gen_range(horizon_ms / 8..=horizon_ms * 3 / 4));
                let down = SimDuration::from_millis(rng.gen_range(30..=250u64));
                faults = faults.crash_for(p, at, down);
            }
        }
        if rng.gen_bool(0.3) {
            families.push(FaultFamily::Oscillation);
            let p = ProcessId::new(rng.gen_range(0..processes as u32));
            let start = t(rng.gen_range(horizon_ms / 10..=horizon_ms / 3));
            let up_for = SimDuration::from_millis(rng.gen_range(40..=120u64));
            let down_for = SimDuration::from_millis(rng.gen_range(10..=60u64));
            faults = faults.oscillate(p, start, up_for, down_for, t(horizon_ms * 3 / 4));
        }

        // --- partitions -----------------------------------------------
        if rng.gen_bool(0.35) {
            families.push(FaultFamily::Partition);
            let (from_t, to_t) = window(&mut rng);
            // Split the deployment in two halves: {0..=split} | rest.
            let split = rng.gen_range(0..processes as u32 - 1);
            for a in 0..=split {
                for b in (split + 1)..processes as u32 {
                    let (a, b) = (ProcessId::new(a), ProcessId::new(b));
                    moments.push(NemesisMoment {
                        at: from_t,
                        action: NemesisAction::Cut { from: a, to: b },
                    });
                    moments.push(NemesisMoment {
                        at: from_t,
                        action: NemesisAction::Cut { from: b, to: a },
                    });
                    moments.push(NemesisMoment {
                        at: to_t,
                        action: NemesisAction::Heal { from: a, to: b },
                    });
                    moments.push(NemesisMoment {
                        at: to_t,
                        action: NemesisAction::Heal { from: b, to: a },
                    });
                }
            }
        }
        if rng.gen_bool(0.35) {
            families.push(FaultFamily::AsymmetricPartition);
            let (from_t, to_t) = window(&mut rng);
            let a = rng.gen_range(0..processes as u32);
            let b = (a + rng.gen_range(1..processes as u32)) % processes as u32;
            let (a, b) = (ProcessId::new(a), ProcessId::new(b));
            moments.push(NemesisMoment {
                at: from_t,
                action: NemesisAction::Cut { from: a, to: b },
            });
            moments.push(NemesisMoment {
                at: to_t,
                action: NemesisAction::Heal { from: a, to: b },
            });
        }

        // --- link-quality bursts --------------------------------------
        let burst = |rng: &mut ChaCha8Rng,
                         moments: &mut Vec<NemesisMoment>,
                         config: LinkConfig| {
            let start = rng.gen_range(horizon_ms / 10..=horizon_ms / 2);
            let len = rng.gen_range(horizon_ms / 10..=horizon_ms / 4);
            moments.push(NemesisMoment {
                at: t(start),
                action: NemesisAction::SetLink(config),
            });
            moments.push(NemesisMoment {
                at: t((start + len).min(horizon_ms)),
                action: NemesisAction::SetLink(baseline_link.clone()),
            });
        };
        if rng.gen_bool(0.35) {
            families.push(FaultFamily::LinkLossBurst);
            let mut config = baseline_link.clone();
            config.loss_probability = rng.gen_range(0.15..0.45);
            burst(&mut rng, &mut moments, config);
        }
        if rng.gen_bool(0.3) {
            families.push(FaultFamily::LinkDelayBurst);
            let mut config = baseline_link.clone();
            config.min_delay = SimDuration::from_millis(rng.gen_range(5..=15u64));
            config.max_delay = SimDuration::from_millis(rng.gen_range(25..=60u64));
            burst(&mut rng, &mut moments, config);
        }
        if rng.gen_bool(0.3) {
            families.push(FaultFamily::Duplication);
            let mut config = baseline_link.clone();
            config.duplication_probability = rng.gen_range(0.1..0.35);
            burst(&mut rng, &mut moments, config);
        }

        // --- whole-deployment restarts and torn WAL tails -------------
        let torn_wal = rng.gen_bool(0.25);
        let mut restarts = 0;
        if rng.gen_bool(0.3) || torn_wal {
            families.push(FaultFamily::DeploymentRestart);
            restarts = rng.gen_range(1..=2usize);
            for _ in 0..restarts {
                let at = t(rng.gen_range(horizon_ms / 4..=horizon_ms * 3 / 4));
                moments.push(NemesisMoment {
                    at,
                    action: NemesisAction::RestartDeployment,
                });
            }
        }
        if torn_wal {
            // Torn tails only materialise at a reopen; the restart above
            // is guaranteed by the `|| torn_wal` arm.
            families.push(FaultFamily::TornWalTail);
        }
        debug_assert!(!torn_wal || restarts > 0);

        // --- storage faults -------------------------------------------
        let mut storage_faults = vec![FaultSchedule::new(); processes];
        if rng.gen_bool(0.4) {
            families.push(FaultFamily::StorageFault);
            let victims = rng.gen_range(1..=2usize);
            for _ in 0..victims {
                let p = rng.gen_range(0..processes);
                let mut schedule = storage_faults[p].clone();
                for _ in 0..rng.gen_range(1..=3usize) {
                    let at_op = rng.gen_range(5..=250u64);
                    let kind = match rng.gen_range(0..3u8) {
                        0 => WriteFaultKind::DiskFull,
                        1 => WriteFaultKind::ShortWrite,
                        _ => WriteFaultKind::FsyncFailure,
                    };
                    schedule = schedule.write_fault(at_op, kind);
                }
                if rng.gen_bool(0.5) {
                    schedule = schedule.read_fault(rng.gen_range(1..=40u64));
                }
                storage_faults[p] = schedule;
            }
        }

        moments.sort_by_key(|m| m.at);
        families.sort();
        families.dedup();

        NemesisPlan {
            seed,
            processes,
            horizon,
            baseline_link,
            faults,
            moments,
            storage_faults,
            torn_wal,
            families,
        }
    }

    /// `true` if the plan includes the given family.
    pub fn includes(&self, family: FaultFamily) -> bool {
        self.families.contains(&family)
    }
}

/// The verdict of running one seed.
#[derive(Clone, Debug)]
pub struct SeedOutcome {
    /// The seed that was run.
    pub seed: u64,
    /// Fault families that actually fired during the run.
    pub families: Vec<FaultFamily>,
    /// Property violations found (empty = the seed passed).
    pub violations: Vec<String>,
    /// Messages delivered by the end of the run (sanity signal that the
    /// schedule did not starve the protocol).
    pub delivered: u64,
}

impl SeedOutcome {
    /// `true` if the seed found no violation.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Configuration of a fuzz campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// First seed of the block.
    pub start_seed: u64,
    /// Maximum number of seeds to run.
    pub max_seeds: u64,
    /// Wall-clock budget; no new seed starts after it is exhausted
    /// (in-flight seeds finish).
    pub budget: Duration,
    /// Worker threads running whole seeds in parallel.
    pub workers: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            start_seed: 0,
            max_seeds: 1000,
            budget: Duration::from_secs(300),
            workers: 4,
        }
    }
}

/// Aggregated result of a fuzz campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// First seed of the block.
    pub start_seed: u64,
    /// Seeds actually run.
    pub seeds_run: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Per-family counts of seeds in which the family fired.
    pub family_counts: BTreeMap<&'static str, u64>,
    /// Outcomes of seeds that found a violation.
    pub failures: Vec<SeedOutcome>,
    /// Total messages delivered across all seeds.
    pub delivered_total: u64,
}

impl CampaignReport {
    /// Fraction of seeds in which `family` fired.
    pub fn coverage(&self, family: FaultFamily) -> f64 {
        if self.seeds_run == 0 {
            return 0.0;
        }
        *self.family_counts.get(family.name()).unwrap_or(&0) as f64 / self.seeds_run as f64
    }

    /// Families whose coverage is below `threshold` (e.g. `0.05`).
    pub fn under_covered(&self, threshold: f64) -> Vec<FaultFamily> {
        FaultFamily::ALL
            .into_iter()
            .filter(|f| self.coverage(*f) < threshold)
            .collect()
    }

    /// Renders the report as JSON (the `fuzz-coverage.json` artifact).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"start_seed\": {},", self.start_seed);
        let _ = writeln!(out, "  \"seeds_run\": {},", self.seeds_run);
        let _ = writeln!(out, "  \"elapsed_secs\": {:.3},", self.elapsed.as_secs_f64());
        let _ = writeln!(out, "  \"delivered_total\": {},", self.delivered_total);
        out.push_str("  \"family_coverage\": {\n");
        let mut first = true;
        for family in FaultFamily::ALL {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let count = *self.family_counts.get(family.name()).unwrap_or(&0);
            let _ = write!(
                out,
                "    \"{}\": {{\"seeds\": {}, \"fraction\": {:.4}}}",
                family.name(),
                count,
                self.coverage(family)
            );
        }
        out.push_str("\n  },\n");
        out.push_str("  \"failures\": [\n");
        let mut first = true;
        for f in &self.failures {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"seed\": {}, \"repro\": \"sim_fuzz --seed {}\", \"violations\": [",
                f.seed, f.seed
            );
            let mut vfirst = true;
            for v in &f.violations {
                if !vfirst {
                    out.push_str(", ");
                }
                vfirst = false;
                let _ = write!(out, "\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
            }
            out.push_str("]}");
        }
        out.push_str("\n  ]\n");
        out.push_str("}\n");
        out
    }
}

/// Runs seeds `start_seed..` through `run_one` on a worker pool until
/// `max_seeds` have run or the wall-clock budget is exhausted, and
/// aggregates fault-family coverage and failures.
///
/// `run_one` must be a pure function of the seed (the workers impose no
/// ordering); the campaign is then reproducible seed-by-seed even though
/// the set of seeds reached within the budget is wall-clock dependent.
pub fn run_campaign(
    config: &CampaignConfig,
    run_one: impl Fn(u64) -> SeedOutcome + Send + Sync,
) -> CampaignReport {
    let started = Instant::now(); // xlint:allow(D1) — wall-clock campaign budget; seeds themselves are deterministic
    let next = AtomicU64::new(0);
    let outcomes: Mutex<Vec<SeedOutcome>> = Mutex::new(Vec::new());
    let workers = config.workers.max(1);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if started.elapsed() >= config.budget {
                    break;
                }
                let offset = next.fetch_add(1, Ordering::Relaxed);
                if offset >= config.max_seeds {
                    break;
                }
                let outcome = run_one(config.start_seed + offset);
                outcomes.lock().expect("fuzz worker panicked").push(outcome);
            });
        }
    });

    let outcomes = outcomes.into_inner().expect("fuzz worker panicked");
    let mut family_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut failures = Vec::new();
    let mut delivered_total = 0;
    for outcome in &outcomes {
        for family in &outcome.families {
            *family_counts.entry(family.name()).or_insert(0) += 1;
        }
        delivered_total += outcome.delivered;
        if !outcome.passed() {
            failures.push(outcome.clone());
        }
    }
    failures.sort_by_key(|f| f.seed);

    CampaignReport {
        start_seed: config.start_seed,
        seeds_run: outcomes.len() as u64,
        elapsed: started.elapsed(),
        family_counts,
        failures,
        delivered_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_per_seed() {
        for seed in 0..50 {
            let a = NemesisPlan::generate(seed);
            let b = NemesisPlan::generate(seed);
            assert_eq!(a.processes, b.processes);
            assert_eq!(a.horizon, b.horizon);
            assert_eq!(a.families, b.families);
            assert_eq!(a.moments, b.moments);
            assert_eq!(a.faults.events(), b.faults.events());
        }
    }

    #[test]
    fn every_family_appears_across_a_seed_block() {
        let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        let block = 400u64;
        for seed in 0..block {
            for family in NemesisPlan::generate(seed).families {
                *counts.entry(family.name()).or_insert(0) += 1;
            }
        }
        for family in FaultFamily::ALL {
            let count = *counts.get(family.name()).unwrap_or(&0);
            assert!(
                count as f64 >= block as f64 * 0.05,
                "family {family} fired in only {count}/{block} plans"
            );
        }
    }

    #[test]
    fn torn_wal_plans_always_restart() {
        let mut seen_torn = false;
        for seed in 0..300 {
            let plan = NemesisPlan::generate(seed);
            if plan.torn_wal {
                seen_torn = true;
                assert!(
                    plan.moments
                        .iter()
                        .any(|m| m.action == NemesisAction::RestartDeployment),
                    "seed {seed}: torn WAL without a restart can never replay the tail"
                );
            }
        }
        assert!(seen_torn);
    }

    #[test]
    fn moments_are_time_ordered_and_inside_the_horizon() {
        for seed in 0..100 {
            let plan = NemesisPlan::generate(seed);
            for pair in plan.moments.windows(2) {
                assert!(pair[0].at <= pair[1].at);
            }
            for moment in &plan.moments {
                assert!(moment.at <= plan.horizon, "seed {seed}");
            }
        }
    }

    #[test]
    fn campaign_aggregates_coverage_and_failures() {
        let config = CampaignConfig {
            start_seed: 10,
            max_seeds: 40,
            budget: Duration::from_secs(60),
            workers: 4,
        };
        let report = run_campaign(&config, |seed| {
            let plan = NemesisPlan::generate(seed);
            SeedOutcome {
                seed,
                families: plan.families,
                violations: if seed == 17 {
                    vec!["synthetic violation".into()]
                } else {
                    Vec::new()
                },
                delivered: 3,
            }
        });
        assert_eq!(report.seeds_run, 40);
        assert_eq!(report.delivered_total, 120);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].seed, 17);
        let json = report.to_json();
        assert!(json.contains("\"seeds_run\": 40"));
        assert!(json.contains("sim_fuzz --seed 17"));
        assert!(json.contains("\"family_coverage\""));
    }

    #[test]
    fn campaign_respects_an_exhausted_budget() {
        let config = CampaignConfig {
            start_seed: 0,
            max_seeds: 100_000,
            budget: Duration::ZERO,
            workers: 2,
        };
        let report = run_campaign(&config, |seed| SeedOutcome {
            seed,
            families: Vec::new(),
            violations: Vec::new(),
            delivered: 0,
        });
        assert_eq!(report.seeds_run, 0, "zero budget starts no seed");
    }
}
