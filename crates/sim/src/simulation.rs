//! The deterministic discrete-event simulation runtime.
//!
//! A [`Simulation`] owns the whole "world" of one run: the virtual clock,
//! the event queue, the fair-lossy network, each process's stable storage
//! and each process's actor (or the fact that it is currently down).
//! Because every source of non-determinism — message loss, duplication,
//! delay, crash and recovery times — is drawn from a single seeded RNG or
//! scheduled explicitly, two runs with the same seed and the same schedule
//! produce byte-for-byte identical behaviour.  All experiments and most
//! tests in the workspace are built on this runtime.

use std::collections::BTreeMap;

use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use abcast_net::{Actor, ActorContext, LinkConfig, LinkModel, NetworkMetrics, TimerId};
use abcast_storage::{SharedStorage, StorageRegistry};
use abcast_types::{ProcessId, ProcessSet, SimDuration, SimTime};

use crate::event::{Event, EventQueue};

/// Static parameters of a simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of processes in the system.
    pub processes: usize,
    /// Seed of the run; every random decision derives from it.
    pub seed: u64,
    /// Behaviour of every directed link.
    pub link: LinkConfig,
}

impl SimConfig {
    /// A convenient small configuration: `n` processes, reliable links,
    /// seed 0.
    pub fn reliable(n: usize) -> Self {
        SimConfig {
            processes: n,
            seed: 0,
            link: LinkConfig::reliable(),
        }
    }

    /// `n` processes over a typical LAN-like lossy link.
    pub fn lan(n: usize) -> Self {
        SimConfig {
            processes: n,
            seed: 0,
            link: LinkConfig::lan(),
        }
    }

    /// Returns this configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns this configuration with a different link model.
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }
}

/// Aggregate counters of one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Events processed so far.
    pub events: u64,
    /// Crash events applied.
    pub crashes: u64,
    /// Recovery events applied.
    pub recoveries: u64,
    /// Client requests handed to an up process.
    pub client_requests: u64,
    /// Client requests lost because the target process was down.
    pub lost_client_requests: u64,
}

#[derive(Debug, Default)]
struct TimerTable {
    generations: BTreeMap<TimerId, u64>,
    next_generation: u64,
}

struct ProcessSlot<A: Actor> {
    actor: Option<A>,
    timers: TimerTable,
    crashes: u64,
    recoveries: u64,
    deliveries: u64,
}

impl<A: Actor> Default for ProcessSlot<A> {
    fn default() -> Self {
        ProcessSlot {
            actor: None,
            timers: TimerTable::default(),
            crashes: 0,
            recoveries: 0,
            deliveries: 0,
        }
    }
}

/// Per-process counters exposed for assertions and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessStats {
    /// `true` if the process is currently up.
    pub up: bool,
    /// Number of crashes suffered so far.
    pub crashes: u64,
    /// Number of recoveries performed so far.
    pub recoveries: u64,
    /// Number of transport messages delivered to this process.
    pub deliveries: u64,
}

/// The deterministic discrete-event simulator.
///
/// All processes run the same actor type `A`, built by the factory passed to
/// [`Simulation::new`]; this mirrors the paper, where every process runs the
/// same protocol.
pub struct Simulation<A: Actor> {
    config: SimConfig,
    process_set: ProcessSet,
    now: SimTime,
    queue: EventQueue<A::Msg>,
    slots: Vec<ProcessSlot<A>>,
    storage: StorageRegistry,
    link: LinkModel,
    rng: ChaCha8Rng,
    net_metrics: NetworkMetrics,
    stats: SimStats,
    factory: Box<dyn Fn(ProcessId, SharedStorage) -> A>,
}

impl<A: Actor> Simulation<A> {
    /// Creates a simulation with fresh in-memory stable storage and starts
    /// every process at virtual time zero.
    pub fn new<F>(config: SimConfig, factory: F) -> Self
    where
        F: Fn(ProcessId, SharedStorage) -> A + 'static,
    {
        let storage = StorageRegistry::in_memory(config.processes);
        Simulation::with_storage(config, storage, factory)
    }

    /// Creates a simulation over an existing storage registry (used to
    /// simulate recovery of a whole deployment from persisted state).
    pub fn with_storage<F>(config: SimConfig, storage: StorageRegistry, factory: F) -> Self
    where
        F: Fn(ProcessId, SharedStorage) -> A + 'static,
    {
        assert_eq!(
            storage.len(),
            config.processes,
            "one stable storage per process is required"
        );
        let process_set = ProcessSet::new(config.processes);
        let link = LinkModel::new(config.link.clone());
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let mut sim = Simulation {
            process_set,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            slots: (0..config.processes).map(|_| ProcessSlot::default()).collect(),
            storage,
            link,
            rng,
            net_metrics: NetworkMetrics::new(),
            stats: SimStats::default(),
            factory: Box::new(factory),
            config,
        };
        for p in sim.process_set.clone().iter() {
            sim.boot(p);
        }
        sim
    }

    /// The configuration of this run.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The set of processes.
    pub fn processes(&self) -> &ProcessSet {
        &self.process_set
    }

    /// `true` if process `p` is currently up.
    pub fn is_up(&self, p: ProcessId) -> bool {
        self.slots[p.index()].actor.is_some()
    }

    /// Immutable access to the actor of process `p`, or `None` if it is
    /// down.
    pub fn actor(&self, p: ProcessId) -> Option<&A> {
        self.slots[p.index()].actor.as_ref()
    }

    /// Runs `f` against the live actor of process `p` with a full actor
    /// context (so the closure can send messages, arm timers and use
    /// storage exactly like a handler would), returning its result, or
    /// `None` if the process is currently down.
    ///
    /// This is how harnesses invoke application-facing protocol operations
    /// (e.g. `A-broadcast`) that need a context and return a value.
    pub fn with_actor_mut<R>(
        &mut self,
        p: ProcessId,
        f: impl FnOnce(&mut A, &mut dyn ActorContext<A::Msg>) -> R,
    ) -> Option<R> {
        self.slots[p.index()].actor.as_ref()?;
        let mut result = None;
        self.with_actor(p, |actor, ctx| {
            result = Some(f(actor, ctx));
        });
        result
    }

    /// Stable storage of process `p`.
    pub fn storage_for(&self, p: ProcessId) -> SharedStorage {
        self.storage
            .storage_for(p)
            .expect("process is part of the configured set")
    }

    /// The storage registry of the whole deployment.
    pub fn storage(&self) -> &StorageRegistry {
        &self.storage
    }

    /// Transport metrics of this run.
    pub fn network_metrics(&self) -> &NetworkMetrics {
        &self.net_metrics
    }

    /// Aggregate counters of this run.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Per-process counters.
    pub fn process_stats(&self, p: ProcessId) -> ProcessStats {
        let slot = &self.slots[p.index()];
        ProcessStats {
            up: slot.actor.is_some(),
            crashes: slot.crashes,
            recoveries: slot.recoveries,
            deliveries: slot.deliveries,
        }
    }

    /// Mutable access to the link model, e.g. to cut or heal partitions
    /// mid-run.
    pub fn link_mut(&mut self) -> &mut LinkModel {
        &mut self.link
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Schedules a crash of `p` at absolute time `at`.
    pub fn crash_at(&mut self, p: ProcessId, at: SimTime) {
        self.queue.schedule(at.max(self.now), Event::Crash { process: p });
    }

    /// Schedules a recovery of `p` at absolute time `at`.
    pub fn recover_at(&mut self, p: ProcessId, at: SimTime) {
        self.queue
            .schedule(at.max(self.now), Event::Recover { process: p });
    }

    /// Crashes `p` immediately (before the next event is processed).
    pub fn crash_now(&mut self, p: ProcessId) {
        self.apply_crash(p);
    }

    /// Recovers `p` immediately (before the next event is processed).
    pub fn recover_now(&mut self, p: ProcessId) {
        self.apply_recover(p);
    }

    /// Whole-deployment restart: crashes every up process at once, then
    /// boots every process again (each runs its recovery procedure over
    /// its surviving stable storage).  Models a datacenter power cycle.
    ///
    /// Virtual time keeps running and already-scheduled events stay in the
    /// queue: in-flight messages may still arrive after the restart (the
    /// fair-lossy channel is allowed to delay arbitrarily), stale timer
    /// events are discarded by their generation counters, and planned
    /// crash/recovery events still fire.
    pub fn restart_deployment(&mut self) {
        let processes: Vec<ProcessId> = self.processes().iter().collect();
        for p in &processes {
            self.apply_crash(*p);
        }
        for p in &processes {
            self.apply_recover(*p);
        }
    }

    /// Schedules a client request (e.g. an `A-broadcast`) at `p` at time
    /// `at`.
    pub fn client_request_at(&mut self, p: ProcessId, payload: impl Into<Bytes>, at: SimTime) {
        self.queue.schedule(
            at.max(self.now),
            Event::ClientRequest {
                process: p,
                payload: payload.into(),
            },
        );
    }

    /// Delivers a client request to `p` immediately.
    pub fn client_request_now(&mut self, p: ProcessId, payload: impl Into<Bytes>) {
        let payload = payload.into();
        if self.slots[p.index()].actor.is_some() {
            self.stats.client_requests += 1;
            self.with_actor(p, |actor, ctx| actor.on_client_request(payload, ctx));
        } else {
            self.stats.lost_client_requests += 1;
        }
    }

    // ------------------------------------------------------------------
    // Running
    // ------------------------------------------------------------------

    /// Processes the next scheduled event.  Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some((at, event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must not move backwards");
        self.now = at;
        self.stats.events += 1;
        match event {
            Event::Deliver { to, from, msg } => {
                if self.slots[to.index()].actor.is_some() {
                    self.net_metrics.record_delivered();
                    self.slots[to.index()].deliveries += 1;
                    self.with_actor(to, |actor, ctx| actor.on_message(from, msg, ctx));
                } else {
                    // Messages that arrive while the process is down are
                    // lost (Section 2.1).
                    self.net_metrics.record_lost_receiver_down();
                }
            }
            Event::Timer {
                process,
                timer,
                generation,
            } => {
                let slot = &mut self.slots[process.index()];
                let armed = slot.timers.generations.get(&timer) == Some(&generation);
                if armed && slot.actor.is_some() {
                    slot.timers.generations.remove(&timer);
                    self.with_actor(process, |actor, ctx| actor.on_timer(timer, ctx));
                }
            }
            Event::Crash { process } => self.apply_crash(process),
            Event::Recover { process } => self.apply_recover(process),
            Event::ClientRequest { process, payload } => {
                if self.slots[process.index()].actor.is_some() {
                    self.stats.client_requests += 1;
                    self.with_actor(process, |actor, ctx| actor.on_client_request(payload, ctx));
                } else {
                    self.stats.lost_client_requests += 1;
                }
            }
        }
        true
    }

    /// Runs until the virtual clock reaches `deadline` (processing every
    /// event scheduled strictly before it), then sets the clock to
    /// `deadline`.
    pub fn run_until_time(&mut self, deadline: SimTime) {
        while let Some(next) = self.queue.next_time() {
            if next > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `duration` of virtual time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until_time(deadline);
    }

    /// Runs until `predicate` returns `true` or the virtual clock exceeds
    /// `deadline`.  Returns `true` if the predicate was satisfied.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut predicate: F) -> bool
    where
        F: FnMut(&Self) -> bool,
    {
        if predicate(self) {
            return true;
        }
        while let Some(next) = self.queue.next_time() {
            if next > deadline {
                break;
            }
            self.step();
            if predicate(self) {
                return true;
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        predicate(self)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn boot(&mut self, p: ProcessId) {
        let storage = self.storage_for(p);
        let actor = (self.factory)(p, storage);
        self.slots[p.index()].actor = Some(actor);
        self.with_actor(p, |actor, ctx| actor.on_start(ctx));
    }

    fn apply_crash(&mut self, p: ProcessId) {
        let slot = &mut self.slots[p.index()];
        if slot.actor.is_none() {
            return;
        }
        slot.actor = None;
        slot.timers.generations.clear();
        slot.crashes += 1;
        self.stats.crashes += 1;
    }

    fn apply_recover(&mut self, p: ProcessId) {
        if self.slots[p.index()].actor.is_some() {
            return;
        }
        self.slots[p.index()].recoveries += 1;
        self.stats.recoveries += 1;
        self.boot(p);
    }

    fn with_actor<F>(&mut self, p: ProcessId, f: F)
    where
        F: FnOnce(&mut A, &mut dyn ActorContext<A::Msg>),
    {
        let idx = p.index();
        let Some(mut actor) = self.slots[idx].actor.take() else {
            return;
        };
        {
            let storage = self
                .storage
                .storage_for(p)
                .expect("process is part of the configured set");
            let mut ctx = SimContext {
                me: p,
                now: self.now,
                process_set: &self.process_set,
                storage,
                queue: &mut self.queue,
                rng: &mut self.rng,
                link: &self.link,
                metrics: &self.net_metrics,
                timers: &mut self.slots[idx].timers,
            };
            f(&mut actor, &mut ctx);
        }
        // The actor may have crashed *itself* during the handler only via the
        // runtime API, which is not reachable from the context, so it is
        // always put back.
        self.slots[idx].actor = Some(actor);
    }
}

struct SimContext<'a, M> {
    me: ProcessId,
    now: SimTime,
    process_set: &'a ProcessSet,
    storage: SharedStorage,
    queue: &'a mut EventQueue<M>,
    rng: &'a mut ChaCha8Rng,
    link: &'a LinkModel,
    metrics: &'a NetworkMetrics,
    timers: &'a mut TimerTable,
}

impl<'a, M: Clone> SimContext<'a, M> {
    fn transmit(&mut self, to: ProcessId, msg: M) {
        self.metrics.record_sent();
        let plan = self.link.plan(self.me, to, self.rng);
        if plan.is_empty() {
            self.metrics.record_dropped();
        }
        for delivery in plan {
            if delivery.duplicate {
                self.metrics.record_duplicated();
            }
            self.queue.schedule(
                self.now + delivery.delay,
                Event::Deliver {
                    to,
                    from: self.me,
                    msg: msg.clone(),
                },
            );
        }
    }
}

impl<'a, M: Clone + Send + 'static> ActorContext<M> for SimContext<'a, M> {
    fn me(&self) -> ProcessId {
        self.me
    }

    fn processes(&self) -> &ProcessSet {
        self.process_set
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn send(&mut self, to: ProcessId, msg: M) {
        self.transmit(to, msg);
    }

    fn multisend(&mut self, msg: M) {
        for to in self.process_set.iter() {
            // Collecting into the queue immediately keeps per-destination
            // random decisions in a fixed order, preserving determinism.
            self.transmit(to, msg.clone());
        }
    }

    fn set_timer(&mut self, timer: TimerId, delay: SimDuration) {
        self.timers.next_generation += 1;
        let generation = self.timers.next_generation;
        self.timers.generations.insert(timer, generation);
        self.queue.schedule(
            self.now + delay,
            Event::Timer {
                process: self.me,
                timer,
                generation,
            },
        );
    }

    fn cancel_timer(&mut self, timer: TimerId) {
        self.timers.generations.remove(&timer);
    }

    fn storage(&self) -> &SharedStorage {
        &self.storage
    }

    fn random_u64(&mut self) -> u64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_storage::{StorageKey, TypedStorageExt};

    /// Test actor: periodically multisends a sequence number, records what
    /// it received, and persists its send counter.
    struct Chatter {
        sent: u64,
        received: Vec<(ProcessId, u64)>,
        last_request: Option<Vec<u8>>,
    }

    const TICK: TimerId = TimerId::new(1);

    impl Chatter {
        fn new() -> Self {
            Chatter {
                sent: 0,
                received: Vec::new(),
                last_request: None,
            }
        }
    }

    impl Actor for Chatter {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut dyn ActorContext<u64>) {
            self.sent = ctx
                .storage()
                .load_value(&StorageKey::new("sent"))
                .unwrap()
                .unwrap_or(0);
            ctx.set_timer(TICK, SimDuration::from_millis(10));
        }

        fn on_message(&mut self, from: ProcessId, msg: u64, _ctx: &mut dyn ActorContext<u64>) {
            self.received.push((from, msg));
        }

        fn on_timer(&mut self, timer: TimerId, ctx: &mut dyn ActorContext<u64>) {
            assert_eq!(timer, TICK);
            self.sent += 1;
            ctx.storage()
                .store_value(&StorageKey::new("sent"), &self.sent)
                .unwrap();
            ctx.multisend(self.sent);
            ctx.set_timer(TICK, SimDuration::from_millis(10));
        }

        fn on_client_request(&mut self, payload: Bytes, _ctx: &mut dyn ActorContext<u64>) {
            self.last_request = Some(payload.to_vec());
        }
    }

    fn sim(n: usize) -> Simulation<Chatter> {
        Simulation::new(SimConfig::reliable(n), |_, _| Chatter::new())
    }

    #[test]
    fn messages_flow_between_processes() {
        let mut s = sim(3);
        s.run_for(SimDuration::from_millis(100));
        for p in s.processes().iter() {
            let actor = s.actor(p).unwrap();
            assert!(
                actor.received.len() >= 10,
                "{p} received only {} messages",
                actor.received.len()
            );
        }
        assert!(s.network_metrics().delivered() > 0);
        assert!(s.stats().events > 0);
    }

    #[test]
    fn virtual_time_advances_without_real_time() {
        let mut s = sim(2);
        s.run_for(SimDuration::from_secs(60));
        assert_eq!(s.now(), SimTime::ZERO + SimDuration::from_secs(60));
        // 60 seconds of virtual time, ~6000 ticks per process.
        assert!(s.actor(ProcessId::new(0)).unwrap().sent >= 5_000);
    }

    #[test]
    fn crash_loses_volatile_state_and_messages() {
        let mut s = sim(3);
        let p = ProcessId::new(1);
        s.run_for(SimDuration::from_millis(50));
        let received_before = s.actor(p).unwrap().received.len();
        assert!(received_before > 0);

        s.crash_now(p);
        assert!(!s.is_up(p));
        assert!(s.actor(p).is_none());
        s.run_for(SimDuration::from_millis(50));
        // Messages sent to the crashed process were lost, not queued.
        assert!(s.network_metrics().snapshot().lost_receiver_down > 0);

        s.recover_now(p);
        assert!(s.is_up(p));
        let actor = s.actor(p).unwrap();
        // Volatile state was reset...
        assert!(actor.received.is_empty());
        // ...but the persistent counter was retrieved.
        assert!(actor.sent > 0);
        assert_eq!(s.process_stats(p).crashes, 1);
        assert_eq!(s.process_stats(p).recoveries, 1);
    }

    #[test]
    fn scheduled_crash_and_recovery_apply_at_the_right_time() {
        let mut s = sim(2);
        let p = ProcessId::new(0);
        s.crash_at(p, SimTime::from_micros(30_000));
        s.recover_at(p, SimTime::from_micros(60_000));

        s.run_until_time(SimTime::from_micros(29_000));
        assert!(s.is_up(p));
        s.run_until_time(SimTime::from_micros(31_000));
        assert!(!s.is_up(p));
        s.run_until_time(SimTime::from_micros(61_000));
        assert!(s.is_up(p));
    }

    #[test]
    fn client_requests_reach_up_processes_and_are_lost_on_down_ones() {
        let mut s = sim(2);
        let p = ProcessId::new(0);
        s.client_request_now(p, &b"req-1"[..]);
        assert_eq!(s.actor(p).unwrap().last_request, Some(b"req-1".to_vec()));
        assert_eq!(s.stats().client_requests, 1);

        s.crash_now(p);
        s.client_request_now(p, &b"req-2"[..]);
        assert_eq!(s.stats().lost_client_requests, 1);
    }

    #[test]
    fn run_until_stops_when_predicate_holds() {
        let mut s = sim(3);
        let satisfied = s.run_until(SimTime::from_micros(10_000_000), |sim| {
            sim.actor(ProcessId::new(2))
                .map(|a| a.received.len() >= 20)
                .unwrap_or(false)
        });
        assert!(satisfied);
        assert!(s.now() < SimTime::from_micros(10_000_000));
    }

    #[test]
    fn identical_seeds_produce_identical_runs() {
        let run = |seed: u64| {
            let mut s = Simulation::new(
                SimConfig::lan(4).with_seed(seed),
                |_, _| Chatter::new(),
            );
            s.crash_at(ProcessId::new(2), SimTime::from_micros(40_000));
            s.recover_at(ProcessId::new(2), SimTime::from_micros(90_000));
            s.run_for(SimDuration::from_millis(300));
            let received: Vec<Vec<(ProcessId, u64)>> = s
                .processes()
                .iter()
                .map(|p| s.actor(p).map(|a| a.received.clone()).unwrap_or_default())
                .collect();
            (s.stats(), s.network_metrics().snapshot(), received)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn lossy_links_drop_messages() {
        let mut s = Simulation::new(
            SimConfig::reliable(2)
                .with_link(LinkConfig::reliable().with_loss(0.4))
                .with_seed(3),
            |_, _| Chatter::new(),
        );
        s.run_for(SimDuration::from_secs(1));
        let snap = s.network_metrics().snapshot();
        assert!(snap.dropped > 0, "some messages must be dropped");
        assert!(snap.delivered > 0, "fair link still delivers");
        let loss_rate = snap.dropped as f64 / snap.sent as f64;
        assert!((loss_rate - 0.4).abs() < 0.05, "observed loss {loss_rate}");
    }

    #[test]
    fn cancelled_timers_do_not_fire() {
        struct OneShot {
            fired: bool,
        }
        impl Actor for OneShot {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut dyn ActorContext<()>) {
                ctx.set_timer(TimerId::new(9), SimDuration::from_millis(10));
                ctx.cancel_timer(TimerId::new(9));
                ctx.set_timer(TimerId::new(10), SimDuration::from_millis(20));
                // Re-arming replaces the old deadline.
                ctx.set_timer(TimerId::new(10), SimDuration::from_millis(40));
            }
            fn on_message(&mut self, _: ProcessId, _: (), _: &mut dyn ActorContext<()>) {}
            fn on_timer(&mut self, timer: TimerId, ctx: &mut dyn ActorContext<()>) {
                assert_eq!(timer, TimerId::new(10));
                assert_eq!(ctx.now(), SimTime::from_micros(40_000));
                self.fired = true;
            }
        }
        let mut s = Simulation::new(SimConfig::reliable(1), |_, _| OneShot { fired: false });
        s.run_for(SimDuration::from_millis(100));
        assert!(s.actor(ProcessId::new(0)).unwrap().fired);
    }

    #[test]
    fn whole_deployment_restart_reuses_storage() {
        let storage = StorageRegistry::in_memory(2);
        let mut s = Simulation::with_storage(SimConfig::reliable(2), storage.clone(), |_, _| {
            Chatter::new()
        });
        s.run_for(SimDuration::from_millis(100));
        let sent_before = s.actor(ProcessId::new(0)).unwrap().sent;
        drop(s);

        // New simulation over the *same* storage: counters resume.
        let s2 = Simulation::with_storage(SimConfig::reliable(2), storage, |_, _| Chatter::new());
        assert!(s2.actor(ProcessId::new(0)).unwrap().sent >= sent_before);
    }
}
