//! Deterministic discrete-event simulator for crash-recovery protocols.
//!
//! The paper's system model (Section 2.1) — asynchronous processes that
//! crash and recover, stable storage, fair-lossy non-FIFO duplicating
//! channels with arbitrary delays — is exactly what this crate simulates:
//!
//! * [`Simulation`] — the event loop: virtual time, seeded randomness,
//!   per-process actors and stable storage, message loss/duplication/delay,
//!   crash and recovery events, client-request injection;
//! * [`FaultPlan`] — declarative crash/recovery schedules, including the
//!   *good*/*bad* process taxonomy of Section 3.3 (good processes
//!   eventually remain up, bad ones crash forever or oscillate);
//! * [`Event`] / [`EventQueue`] — the underlying time-ordered queue.
//!
//! Runs are reproducible: the same seed and the same schedule produce the
//! same behaviour, which the experiment harness relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod faults;
pub mod fuzz;
pub mod simulation;

pub use event::{Event, EventQueue};
pub use faults::{FaultEvent, FaultPlan, ProcessClass};
pub use fuzz::{
    run_campaign, CampaignConfig, CampaignReport, FaultFamily, NemesisAction, NemesisMoment,
    NemesisPlan, SeedOutcome,
};
pub use simulation::{ProcessStats, SimConfig, SimStats, Simulation};
