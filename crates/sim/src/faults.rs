//! Fault-injection schedules: crash/recovery plans and the good/bad process
//! taxonomy of Section 3.3.
//!
//! A *good* process eventually remains permanently up; a *bad* process
//! either eventually remains crashed or oscillates between up and down
//! forever.  [`FaultPlan`] lets an experiment express both kinds of
//! behaviour declaratively and apply them to a [`Simulation`], and
//! [`FaultPlan::classify`] reports which processes are good or bad over the
//! planned horizon so assertions can be phrased exactly like the paper's
//! properties ("all good processes A-deliver …").

use rand::Rng;
use rand_chacha::ChaCha8Rng;
use rand::SeedableRng;

use abcast_net::Actor;
use abcast_types::{ProcessId, SimDuration, SimTime};

use crate::simulation::Simulation;

/// One planned lifecycle change of a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// The process crashes at the given time.
    Crash(SimTime),
    /// The process recovers at the given time.
    Recover(SimTime),
}

impl FaultEvent {
    /// The time of this event.
    pub fn at(&self) -> SimTime {
        match self {
            FaultEvent::Crash(t) | FaultEvent::Recover(t) => *t,
        }
    }
}

/// Classification of a process over the planned horizon (Section 3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcessClass {
    /// The process never crashes, or eventually recovers and stays up.
    Good,
    /// The process eventually remains crashed or keeps oscillating.
    Bad,
}

/// A declarative crash/recovery schedule for a whole deployment.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<(ProcessId, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan: every process stays up forever.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a crash of `p` at `at`.
    pub fn crash(mut self, p: ProcessId, at: SimTime) -> Self {
        self.events.push((p, FaultEvent::Crash(at)));
        self
    }

    /// Adds a recovery of `p` at `at`.
    pub fn recover(mut self, p: ProcessId, at: SimTime) -> Self {
        self.events.push((p, FaultEvent::Recover(at)));
        self
    }

    /// Adds a crash at `crash_at` followed by a recovery after `downtime`.
    pub fn crash_for(self, p: ProcessId, crash_at: SimTime, downtime: SimDuration) -> Self {
        self.crash(p, crash_at).recover(p, crash_at + downtime)
    }

    /// Makes `p` a *bad* process that oscillates forever (well, until
    /// `horizon`): up for `up_for`, down for `down_for`, repeatedly,
    /// starting with a crash at `start`.
    pub fn oscillate(
        mut self,
        p: ProcessId,
        start: SimTime,
        up_for: SimDuration,
        down_for: SimDuration,
        horizon: SimTime,
    ) -> Self {
        let mut t = start;
        while t < horizon {
            self.events.push((p, FaultEvent::Crash(t)));
            let back_up = t + down_for;
            if back_up >= horizon {
                break;
            }
            self.events.push((p, FaultEvent::Recover(back_up)));
            t = back_up + up_for;
        }
        self
    }

    /// Makes `p` crash at `at` and never recover (a bad process that
    /// eventually remains down).
    pub fn permanent_crash(self, p: ProcessId, at: SimTime) -> Self {
        self.crash(p, at)
    }

    /// Generates random crash/recovery churn for the given processes: each
    /// process independently alternates up periods drawn from
    /// `[min_up, max_up]` and down periods from `[min_down, max_down]`
    /// until `horizon`, after which it stays up (so every process is good
    /// and liveness assertions still apply).
    #[allow(clippy::too_many_arguments)] // lint: churn bounds read clearest as explicit parameters
    pub fn random_churn(
        mut self,
        processes: impl IntoIterator<Item = ProcessId>,
        seed: u64,
        min_up: SimDuration,
        max_up: SimDuration,
        min_down: SimDuration,
        max_down: SimDuration,
        horizon: SimTime,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for p in processes {
            let mut t = SimTime::ZERO;
            loop {
                let up = SimDuration::from_micros(
                    rng.gen_range(min_up.as_micros()..=max_up.as_micros()),
                );
                t += up;
                if t >= horizon {
                    break;
                }
                self.events.push((p, FaultEvent::Crash(t)));
                let down = SimDuration::from_micros(
                    rng.gen_range(min_down.as_micros()..=max_down.as_micros()),
                );
                t += down;
                if t >= horizon {
                    // Recover at the horizon so the process ends up good.
                    self.events.push((p, FaultEvent::Recover(horizon)));
                    break;
                }
                self.events.push((p, FaultEvent::Recover(t)));
            }
        }
        self
    }

    /// The scheduled events, sorted by time.
    ///
    /// Events at the same instant are ordered crash-before-recovery
    /// (independently of the order they were added to the plan), so a
    /// process with both a `Crash` and a `Recover` at time `t` performs a
    /// crash-recover bounce and ends the instant *up*.  This is the same
    /// rule [`FaultPlan::classify`] uses, so classification always matches
    /// what applying the plan to a simulation produces.
    pub fn events(&self) -> Vec<(ProcessId, FaultEvent)> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|(_, e)| (e.at(), matches!(e, FaultEvent::Recover(_))));
        sorted
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total number of crash events for process `p`.
    pub fn crash_count(&self, p: ProcessId) -> usize {
        self.events
            .iter()
            .filter(|(q, e)| *q == p && matches!(e, FaultEvent::Crash(_)))
            .count()
    }

    /// Classifies `p`: good if its last scheduled lifecycle event (if any)
    /// is a recovery — i.e. the plan leaves it up.
    ///
    /// Deterministic regardless of the order events were added: duplicate
    /// events at the same `SimTime` classify by the crash-before-recovery
    /// rule of [`FaultPlan::events`] (a same-instant crash + recover pair
    /// leaves the process up, hence `Good`).
    pub fn classify(&self, p: ProcessId) -> ProcessClass {
        self.classify_at(p, SimTime::from_micros(u64::MAX))
    }

    /// Classifies `p` over the run horizon `[0, horizon]`: only events at
    /// or before `horizon` count, because later events never fire in a run
    /// that stops there.  A `Recover` exactly *at* the horizon boundary
    /// counts (the simulator processes events scheduled at the deadline),
    /// so such a plan classifies the process `Good`; a recovery strictly
    /// after the horizon does not save a crashed process.
    pub fn classify_at(&self, p: ProcessId, horizon: SimTime) -> ProcessClass {
        let last = self
            .events
            .iter()
            .filter(|(q, e)| *q == p && e.at() <= horizon)
            .max_by_key(|(_, e)| (e.at(), matches!(e, FaultEvent::Recover(_))));
        match last {
            None | Some((_, FaultEvent::Recover(_))) => ProcessClass::Good,
            Some((_, FaultEvent::Crash(_))) => ProcessClass::Bad,
        }
    }

    /// Every process of `n` that the plan leaves good.
    pub fn good_processes(&self, n: usize) -> Vec<ProcessId> {
        (0..n as u32)
            .map(ProcessId::new)
            .filter(|p| self.classify(*p) == ProcessClass::Good)
            .collect()
    }

    /// Every process of `n` that is good over the run horizon
    /// (see [`FaultPlan::classify_at`]).
    pub fn good_processes_at(&self, n: usize, horizon: SimTime) -> Vec<ProcessId> {
        (0..n as u32)
            .map(ProcessId::new)
            .filter(|p| self.classify_at(*p, horizon) == ProcessClass::Good)
            .collect()
    }

    /// Schedules every event of this plan on `sim`.
    pub fn apply<A: Actor>(&self, sim: &mut Simulation<A>) {
        for (p, event) in self.events() {
            match event {
                FaultEvent::Crash(at) => sim.crash_at(p, at),
                FaultEvent::Recover(at) => sim.recover_at(p, at),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }
    fn d(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    #[test]
    fn empty_plan_classifies_everyone_good() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.classify(p(0)), ProcessClass::Good);
        assert_eq!(plan.good_processes(3), vec![p(0), p(1), p(2)]);
    }

    #[test]
    fn crash_for_schedules_crash_then_recovery() {
        let plan = FaultPlan::none().crash_for(p(1), t(100), d(50));
        let events = plan.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], (p(1), FaultEvent::Crash(t(100))));
        assert_eq!(events[1], (p(1), FaultEvent::Recover(t(150))));
        assert_eq!(plan.classify(p(1)), ProcessClass::Good);
        assert_eq!(plan.crash_count(p(1)), 1);
    }

    #[test]
    fn permanent_crash_makes_a_bad_process() {
        let plan = FaultPlan::none().permanent_crash(p(2), t(10));
        assert_eq!(plan.classify(p(2)), ProcessClass::Bad);
        assert_eq!(plan.good_processes(3), vec![p(0), p(1)]);
    }

    #[test]
    fn oscillation_generates_alternating_events_within_horizon() {
        let plan = FaultPlan::none().oscillate(p(0), t(10), d(20), d(5), t(100));
        let events = plan.events();
        assert!(events.len() >= 4);
        // Alternates crash / recover and stays within the horizon.
        for window in events.windows(2) {
            assert!(window[0].1.at() <= window[1].1.at());
        }
        for (_, e) in &events {
            assert!(e.at() < t(100) || matches!(e, FaultEvent::Recover(_)));
        }
        let crashes = plan.crash_count(p(0));
        assert!(crashes >= 2, "an oscillating process crashes repeatedly");
    }

    #[test]
    fn events_are_sorted_by_time() {
        let plan = FaultPlan::none()
            .crash(p(0), t(50))
            .recover(p(0), t(70))
            .crash(p(1), t(10));
        let times: Vec<u64> = plan.events().iter().map(|(_, e)| e.at().as_micros()).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
    }

    #[test]
    fn duplicate_events_at_the_same_time_classify_order_independently() {
        // Same instant, both orders of insertion: the crash-before-recovery
        // rule makes the pair a bounce that leaves the process up.
        let a = FaultPlan::none().crash(p(0), t(40)).recover(p(0), t(40));
        let b = FaultPlan::none().recover(p(0), t(40)).crash(p(0), t(40));
        assert_eq!(a.classify(p(0)), ProcessClass::Good);
        assert_eq!(b.classify(p(0)), ProcessClass::Good);
        // The applied order matches: events() puts the crash first in both.
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events()[0].1, FaultEvent::Crash(t(40)));
        assert_eq!(a.events()[1].1, FaultEvent::Recover(t(40)));
        // Identical duplicate events stay deterministic too.
        let c = FaultPlan::none().crash(p(0), t(40)).crash(p(0), t(40));
        assert_eq!(c.classify(p(0)), ProcessClass::Bad);
    }

    #[test]
    fn recover_at_the_horizon_boundary_counts_as_good() {
        let plan = FaultPlan::none().crash(p(0), t(50)).recover(p(0), t(100));
        // The simulator processes events scheduled exactly at the deadline,
        // so a recovery at the horizon leaves the process up.
        assert_eq!(plan.classify_at(p(0), t(100)), ProcessClass::Good);
        assert_eq!(plan.good_processes_at(2, t(100)), vec![p(0), p(1)]);
        // One tick earlier the recovery has not fired yet.
        assert_eq!(
            plan.classify_at(p(0), SimTime::from_micros(t(100).as_micros() - 1)),
            ProcessClass::Bad
        );
        assert_eq!(
            plan.good_processes_at(2, SimTime::from_micros(t(100).as_micros() - 1)),
            vec![p(1)]
        );
        // A recovery scheduled after the horizon never fires in the run.
        assert_eq!(plan.classify_at(p(0), t(75)), ProcessClass::Bad);
        // Without a horizon the plan leaves the process good.
        assert_eq!(plan.classify(p(0)), ProcessClass::Good);
    }

    #[test]
    fn random_churn_horizon_recovery_classifies_good_at_the_horizon() {
        // random_churn recovers at exactly `horizon` when a down period
        // crosses it — the boundary case classify_at must count.
        let plan = FaultPlan::none().random_churn(
            [p(0), p(1), p(2), p(3)],
            7,
            d(20),
            d(60),
            d(5),
            d(25),
            t(300),
        );
        for proc in [p(0), p(1), p(2), p(3)] {
            assert_eq!(plan.classify_at(proc, t(300)), ProcessClass::Good, "{proc}");
        }
    }

    #[test]
    fn random_churn_is_deterministic_and_leaves_processes_good() {
        let make = |seed| {
            FaultPlan::none().random_churn(
                [p(0), p(1), p(2)],
                seed,
                d(20),
                d(60),
                d(5),
                d(25),
                t(500),
            )
        };
        let a = make(1);
        let b = make(1);
        let c = make(2);
        assert_eq!(a.events(), b.events());
        assert_ne!(a.events(), c.events());
        assert!(!a.is_empty());
        for proc in [p(0), p(1), p(2)] {
            assert_eq!(a.classify(proc), ProcessClass::Good, "{proc}");
        }
    }
}
