//! Partition semantics of the simulated network, pinned through the
//! transport counters ([`NetworkMetrics`]): a cut link *drops* (it never
//! delays or reorders), cuts are *directed*, healing restores the link
//! without replaying what was lost, and partitions compose independently
//! with process crashes (a copy that would have arrived at a down process
//! is accounted as `lost_receiver_down`, not as a link drop).
//!
//! All tests run over [`SimConfig::reliable`], so every `dropped` or
//! `lost_receiver_down` count is attributable to the injected fault alone
//! — the baseline link loses nothing.

use abcast_net::{Actor, ActorContext, TimerId};
use abcast_sim::{SimConfig, Simulation};
use abcast_types::{ProcessId, SimDuration};

fn p(i: u32) -> ProcessId {
    ProcessId::new(i)
}

/// Test actor: multisends a sequence number every 10 ms and records every
/// message it receives together with its sender.
struct Chatter {
    sent: u64,
    received: Vec<(ProcessId, u64)>,
}

const TICK: TimerId = TimerId::new(1);
const PERIOD: SimDuration = SimDuration::from_millis(10);

impl Actor for Chatter {
    type Msg = u64;

    fn on_start(&mut self, ctx: &mut dyn ActorContext<u64>) {
        ctx.set_timer(TICK, PERIOD);
    }

    fn on_message(&mut self, from: ProcessId, msg: u64, _ctx: &mut dyn ActorContext<u64>) {
        self.received.push((from, msg));
    }

    fn on_timer(&mut self, _timer: TimerId, ctx: &mut dyn ActorContext<u64>) {
        self.sent += 1;
        ctx.multisend(self.sent);
        ctx.set_timer(TICK, PERIOD);
    }
}

fn sim(n: usize) -> Simulation<Chatter> {
    Simulation::new(SimConfig::reliable(n), |_, _| Chatter {
        sent: 0,
        received: Vec::new(),
    })
}

fn received_from(s: &Simulation<Chatter>, at: ProcessId, from: ProcessId) -> usize {
    s.actor(at)
        .map(|a| a.received.iter().filter(|(f, _)| *f == from).count())
        .unwrap_or(0)
}

/// An asymmetric cut is strictly directed: `A → B` traffic is dropped at
/// the link while `B → A` keeps flowing, and third parties see both.
#[test]
fn asymmetric_cut_drops_one_direction_only() {
    let mut s = sim(3);
    s.link_mut().cut(p(0), p(1));
    s.run_for(SimDuration::from_millis(200));

    assert_eq!(
        received_from(&s, p(1), p(0)),
        0,
        "cut direction delivered traffic"
    );
    assert!(
        received_from(&s, p(0), p(1)) >= 10,
        "reverse direction must keep flowing"
    );
    assert!(
        received_from(&s, p(2), p(0)) >= 10 && received_from(&s, p(2), p(1)) >= 10,
        "third parties are unaffected"
    );

    // Every loss is a link drop (no process was ever down), and exactly
    // the cut direction's transmissions were dropped.
    let net = s.network_metrics().snapshot();
    assert_eq!(net.lost_receiver_down, 0);
    assert!(net.dropped >= 10, "only {} drops recorded", net.dropped);
    // Every transmission is either delivered, dropped at the cut, or
    // still in flight when the run stops (delays are 1 ms, so at most a
    // couple of ticks' worth) — nothing silently vanishes.
    let in_flight = net.sent - (net.delivered + net.dropped);
    assert!(
        in_flight <= 12,
        "{in_flight} transmissions unaccounted for (sent {}, delivered {}, dropped {})",
        net.sent,
        net.delivered,
        net.dropped
    );
}

/// Healing restores the link for *future* transmissions only: counters
/// stop growing on the drop side, fresh sequence numbers start arriving,
/// and nothing lost during the cut is replayed.
#[test]
fn healing_restores_the_link_without_replay() {
    let mut s = sim(3);
    s.link_mut().cut_both(p(0), p(1));
    s.run_for(SimDuration::from_millis(200));
    assert_eq!(received_from(&s, p(1), p(0)), 0);
    assert_eq!(received_from(&s, p(0), p(1)), 0);
    let during_cut = s.network_metrics().snapshot();
    assert!(during_cut.dropped >= 20, "both directions must drop");

    s.link_mut().heal_all();
    s.run_for(SimDuration::from_millis(200));

    let after_heal = s.network_metrics().snapshot().since(&during_cut);
    assert_eq!(
        after_heal.dropped, 0,
        "a healed reliable link must not drop anything"
    );
    assert!(
        received_from(&s, p(1), p(0)) >= 10 && received_from(&s, p(0), p(1)) >= 10,
        "traffic must resume after the heal"
    );

    // No replay: the first sequence number p1 sees from p0 is one sent
    // after the heal, far beyond what was multisent into the cut.
    let first_seen = s
        .actor(p(1))
        .unwrap()
        .received
        .iter()
        .find(|(f, _)| *f == p(0))
        .map(|(_, seq)| *seq)
        .unwrap();
    assert!(
        first_seen > 15,
        "sequence {first_seen} from inside the cut window was replayed"
    );
}

/// Partitions and crashes are distinct loss mechanisms and are accounted
/// separately: a cut link drops the copy at the link, a down receiver
/// loses it at delivery (Section 2.1), and the two compose without
/// interfering.
#[test]
fn partition_composes_with_a_crash() {
    let mut s = sim(3);
    s.link_mut().cut(p(0), p(1));
    s.crash_now(p(2));
    s.run_for(SimDuration::from_millis(200));

    let net = s.network_metrics().snapshot();
    assert!(net.dropped >= 10, "the cut p0→p1 must keep dropping");
    assert!(
        net.lost_receiver_down >= 10,
        "copies addressed to the crashed p2 must be lost at delivery"
    );
    assert_eq!(received_from(&s, p(1), p(0)), 0);

    // Recover and heal: the deployment reconverges and loss stops.
    s.recover_now(p(2));
    s.link_mut().heal_all();
    let before = s.network_metrics().snapshot();
    s.run_for(SimDuration::from_millis(200));
    let delta = s.network_metrics().snapshot().since(&before);
    assert_eq!(delta.dropped, 0);
    assert_eq!(delta.lost_receiver_down, 0);
    assert!(
        received_from(&s, p(1), p(0)) >= 10 && received_from(&s, p(2), p(0)) >= 10,
        "everyone hears everyone once faults are lifted"
    );
}
