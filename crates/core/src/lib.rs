//! Atomic Broadcast in asynchronous crash-recovery distributed systems.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Rodrigues & Raynal, ICDCS 2000*): a transformation of any Consensus
//! protocol for the crash-recovery model into an Atomic Broadcast protocol
//! for the same model.
//!
//! * [`AtomicBroadcast`] — the protocol state machine: the basic variant of
//!   Section 4 (minimal logging, replay-based recovery) and the alternative
//!   variant of Section 5 (checkpointing, state transfer, batching,
//!   incremental logging, application checkpoints), selected through
//!   [`abcast_types::ProtocolConfig`];
//! * [`UnorderedSet`] / [`AgreedQueue`] — the two interface variables of
//!   Figure 1, including application-level checkpoints;
//! * [`AbcastMsg`] — gossip, state-transfer and wrapped consensus traffic;
//! * [`properties`] — checkers for Validity, Integrity, Total Order and
//!   Termination (Section 2.2);
//! * [`Cluster`] — a simulation harness used by tests, benchmarks and the
//!   experiment binaries;
//! * [`TcpCluster`] — the same harness surface over a real TCP socket
//!   transport on loopback ([`abcast_net::tcp`]), used by the socket
//!   experiments and the stream-fault test suite.
//!
//! # Quick start
//!
//! ```
//! use abcast_core::{Cluster, ClusterConfig};
//! use abcast_types::{ProcessId, SimTime};
//!
//! let mut cluster = Cluster::new(ClusterConfig::basic(3));
//! let id = cluster.broadcast(ProcessId::new(0), b"update".to_vec()).unwrap();
//! assert!(cluster.run_until_all_delivered(SimTime::from_micros(5_000_000)));
//! for p in cluster.processes().iter() {
//!     assert!(cluster.sim().actor(p).unwrap().is_delivered(id));
//! }
//! cluster.assert_properties();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod harness;
pub mod message;
pub mod properties;
pub mod protocol;
pub mod queues;
pub mod socket;

pub use fuzz::{run_seed, run_seed_detailed, FuzzRun};
pub use harness::{Cluster, ClusterConfig, FramedAbcast};
pub use socket::TcpCluster;
pub use message::AbcastMsg;
pub use properties::{
    check_all, check_integrity, check_termination, check_total_order,
    check_total_order_compacted, check_validity, Violation,
};
pub use protocol::{
    AtomicBroadcast, CheckpointProvider, DeliveryEvent, NullCheckpointProvider, ProtocolMetrics,
    CHECKPOINT_TIMER, GOSSIP_TIMER,
};
pub use queues::{AgreedQueue, AppCheckpoint, Batch, DecisionBuffer, UnorderedSet};

// Re-export the configuration types callers need to build a protocol
// instance without importing the whole types crate.
pub use abcast_consensus::ConsensusConfig;
pub use abcast_types::{BatchingPolicy, LoggingPolicy, ProtocolConfig, RecoveryPolicy};
