//! Per-seed fuzz execution: runs one [`NemesisPlan`] against a full
//! deployment and checks the broadcast properties.
//!
//! This is the protocol-specific half of the deterministic fuzzer (the
//! seed → schedule half lives in [`abcast_sim::fuzz`]).  [`run_seed`]
//! reconstructs *everything* about a run — deployment size, protocol
//! variant, workload, fault schedule — from the seed alone, so a failure
//! reported by a campaign reproduces from its `sim_fuzz --seed <s>` line
//! with no other state.
//!
//! Each run has three phases:
//!
//! 1. **Fault phase** — the cluster executes the plan's crash/recovery
//!    schedule, partitions, link bursts, deployment restarts and storage
//!    faults while a seeded workload keeps broadcasting.  Processes that
//!    fail-stop on a storage fault ([`AtomicBroadcast::is_halted`]) are
//!    crashed and later recovered, exactly as the paper's model prescribes.
//!    Safety (Validity, Integrity, Total Order) is checked continuously;
//!    Termination is *not*, because partitions and crash churn legitimately
//!    stall progress.
//! 2. **Heal phase** — every fault is lifted (storage disarmed, partitions
//!    healed, baseline link restored, everyone recovered) and the cluster
//!    runs until delivery converges.  Now all four properties must hold,
//!    with `must_deliver` = everything delivered by anyone.
//! 3. **Durability phase** — the whole deployment restarts (for torn-WAL
//!    seeds: the cluster is torn down, a torn record tail is appended to
//!    one journal, and the deployment reopens from the on-disk files).
//!    Every message delivered before the restart must still be delivered
//!    after it, and the four properties must hold over the recovered
//!    state.

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use abcast_consensus::ConsensusConfig;
use abcast_sim::fuzz::{FaultFamily, NemesisAction, NemesisPlan, SeedOutcome};
use abcast_sim::Simulation;
use abcast_storage::{FaultyStorage, SharedStorage, StorageRegistry};
use abcast_types::{MsgId, ProcessId, ProtocolConfig, SimDuration};

use crate::harness::{Cluster, ClusterConfig, FramedAbcast};
use crate::properties::check_all;
use crate::queues::AgreedQueue;

/// A seed's outcome together with the plan it executed (for reporting).
#[derive(Clone, Debug)]
pub struct FuzzRun {
    /// The schedule the seed generated.
    pub plan: NemesisPlan,
    /// What happened.
    pub outcome: SeedOutcome,
}

/// Runs one fuzz seed end to end.  See the module docs for the phases.
pub fn run_seed(seed: u64) -> SeedOutcome {
    run_seed_detailed(seed).outcome
}

/// Virtual-time step between nemesis polls during the fault phase.
const SLICE: SimDuration = SimDuration::from_millis(2);
/// How long a storage-halted process stays down before it is recovered.
const HALT_DOWNTIME: SimDuration = SimDuration::from_millis(40);

/// Like [`run_seed`], but also returns the generated plan.
pub fn run_seed_detailed(seed: u64) -> FuzzRun {
    let plan = NemesisPlan::generate(seed);
    // Separate stream from the plan's so harness choices (protocol
    // variant, workload) are independent of the fault vocabulary draws.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCA_57F0);
    let protocol = if rng.gen_bool(0.35) {
        ProtocolConfig::alternative()
    } else {
        ProtocolConfig::basic()
    };

    // Torn-WAL seeds run over real on-disk journals so the durability
    // phase can close, corrupt and reopen them; everything else runs over
    // in-memory storage.  Both are wrapped in `FaultyStorage`.
    let wal_dir = plan.torn_wal.then(|| {
        let dir = std::env::temp_dir().join(format!("abcast-sim-fuzz/seed-{seed}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    });
    let inner = match &wal_dir {
        // Tiny segments + the minimum compaction threshold: protocol-sized
        // workloads then rotate and compact constantly, so the crash/torn
        // fault families exercise segment boundaries, not just one file.
        Some(dir) => StorageRegistry::wal_in_segmented(dir, plan.processes, 1, 512, 4096)
            .expect("open WAL storages"),
        None => StorageRegistry::in_memory(plan.processes),
    };
    let faulty: Vec<Arc<FaultyStorage>> = inner
        .iter()
        .map(|(p, s)| {
            Arc::new(FaultyStorage::new(
                s,
                plan.storage_faults[p.index()].clone(),
            ))
        })
        .collect();
    let registry = StorageRegistry::new(
        faulty
            .iter()
            .map(|f| Arc::clone(f) as SharedStorage)
            .collect(),
    );

    let config = ClusterConfig {
        processes: plan.processes,
        seed,
        link: plan.baseline_link.clone(),
        protocol,
        consensus: ConsensusConfig::crash_recovery(),
    };
    let mut cluster = Cluster::with_registry(config.clone(), registry);
    cluster.apply_faults(&plan.faults);

    let mut violations: Vec<String> = Vec::new();

    // ------------------------------------------------------------------
    // Phase 1: faults + workload, safety checked continuously.
    // ------------------------------------------------------------------
    let processes: Vec<ProcessId> = cluster.processes().iter().collect();
    let mut next_moment = 0;
    let mut slices = 0u64;
    let mut payload_counter = 0u8;
    while cluster.now() < plan.horizon {
        let mut deadline = (cluster.now() + SLICE).min(plan.horizon);
        if let Some(moment) = plan.moments.get(next_moment) {
            deadline = deadline.min(moment.at.max(cluster.now()));
        }
        cluster.sim_mut().run_until_time(deadline);

        while let Some(moment) = plan.moments.get(next_moment) {
            if moment.at > cluster.now() {
                break;
            }
            apply_action(&mut cluster, &moment.action);
            next_moment += 1;
        }

        // Fail-stop: a process whose storage misbehaved has halted (it
        // made no externally visible step since the failed write); crash
        // it and bring it back through the recovery procedure later.
        for p in &processes {
            if is_halted(&mut cluster, *p) {
                let back_at = cluster.now() + HALT_DOWNTIME;
                cluster.sim_mut().crash_now(*p);
                cluster.sim_mut().recover_at(*p, back_at);
            }
        }

        // Seeded workload: keep broadcasting from random live processes.
        if rng.gen_bool(0.6) {
            let p = ProcessId::new(rng.gen_range(0..plan.processes as u32));
            if cluster.sim().is_up(p) && !is_halted(&mut cluster, p) {
                payload_counter = payload_counter.wrapping_add(1);
                let size = rng.gen_range(4..=32usize);
                cluster.broadcast(p, vec![payload_counter; size]);
            }
        }

        slices += 1;
        if slices.is_multiple_of(8) {
            // Safety-only check: empty good set and empty must-deliver
            // make Termination vacuous; Validity, Integrity and Total
            // Order still apply to every live delivery sequence.
            for v in cluster.check_properties(&[], &BTreeSet::new()) {
                violations.push(format!("fault phase t={}: {v}", cluster.now()));
            }
            if !violations.is_empty() {
                break; // one broken run is enough; report early
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: heal everything and require convergence + all properties.
    // ------------------------------------------------------------------
    for f in &faulty {
        f.disarm();
    }
    {
        let link = cluster.sim_mut().link_mut();
        link.heal_all();
        link.set_config(plan.baseline_link.clone());
    }
    for p in &processes {
        if is_halted(&mut cluster, *p) {
            cluster.sim_mut().crash_now(*p);
        }
        if !cluster.sim().is_up(*p) {
            cluster.sim_mut().recover_now(*p);
        }
    }
    let ids: BTreeSet<MsgId> = cluster.broadcast_ids().clone();
    let deadline = cluster.now() + SimDuration::from_secs(10);
    let converged = cluster
        .sim_mut()
        .run_until(deadline, |sim| delivery_converged(sim, &ids));
    if !converged {
        violations.push("heal phase: delivery never converged across processes".into());
    }
    let must_before = cluster.delivered_by_any();
    for v in cluster.check_properties(&processes, &must_before) {
        violations.push(format!("heal phase: {v}"));
    }

    // ------------------------------------------------------------------
    // Phase 3: whole-deployment restart; durable state must survive.
    // ------------------------------------------------------------------
    // Storage faults were disarmed at the start of phase 2, so the
    // injection totals are final here — read them before the restart
    // phase tears the storages down.
    let injected: u64 = faulty.iter().map(|f| f.injected().total()).sum();

    let broadcast = cluster.broadcast_ids().clone();
    let (must_after, queue_violations) = match &wal_dir {
        None => {
            cluster.sim_mut().restart_deployment();
            let deadline = cluster.now() + SimDuration::from_secs(10);
            cluster
                .sim_mut()
                .run_until(deadline, |sim| delivery_converged(sim, &ids));
            let must_after = cluster.delivered_by_any();
            let vs: Vec<String> = cluster
                .check_properties(&processes, &must_after)
                .into_iter()
                .map(|v| format!("after restart: {v}"))
                .collect();
            (must_after, vs)
        }
        Some(dir) => {
            // Tear the tail of one journal: a record header promising far
            // more bytes than exist, exactly what a crash mid-append
            // leaves behind.  Replay must stop there, not invent state.
            //
            // A restart kills the whole deployment, background threads
            // included — model that faithfully: the cluster, the faulty
            // wrappers and the inner registry all hold `Arc`s to the WAL
            // storages, and every one must go before the reopen, or a
            // surviving instance's compactor could still be rewriting the
            // directory the new open is replaying.
            drop(cluster);
            drop(faulty);
            drop(inner);
            append_torn_tail(&dir.join("p0.wal"));
            let reopened = StorageRegistry::wal_in_segmented(dir, plan.processes, 1, 512, 4096)
                .expect("reopen WAL storages");
            let mut cluster = Cluster::with_registry(config, reopened);
            let deadline = cluster.now() + SimDuration::from_secs(10);
            cluster
                .sim_mut()
                .run_until(deadline, |sim| delivery_converged(sim, &ids));
            // The reopened harness has no broadcast history, so check
            // against the sets saved from the first deployment.
            let must_after: BTreeSet<MsgId> = ids
                .iter()
                .filter(|id| {
                    cluster
                        .processes()
                        .iter()
                        .filter_map(|p| cluster.sim().actor(p))
                        .any(|a| a.is_delivered(**id))
                })
                .copied()
                .collect();
            let queues: Vec<&AgreedQueue> = processes
                .iter()
                .filter_map(|p| cluster.agreed(*p))
                .collect();
            let good: Vec<usize> = processes.iter().map(|p| p.index()).collect();
            let vs = check_all(&queues, &good, &broadcast, &must_after)
                .into_iter()
                .map(|v| format!("after torn-WAL reopen: {v}"))
                .collect();
            let _ = std::fs::remove_dir_all(dir);
            (must_after, vs)
        }
    };
    violations.extend(queue_violations);
    let lost: Vec<MsgId> = must_before.difference(&must_after).copied().collect();
    if !lost.is_empty() {
        violations.push(format!(
            "Durability violated: delivered before the deployment restart but not after: {lost:?}"
        ));
    }

    // ------------------------------------------------------------------
    // Which families actually fired?  Everything in the plan fires
    // deterministically except storage faults, which only count if an
    // injection point was actually reached.
    // ------------------------------------------------------------------
    let families: Vec<FaultFamily> = plan
        .families
        .iter()
        .copied()
        .filter(|f| *f != FaultFamily::StorageFault || injected > 0)
        .collect();

    FuzzRun {
        outcome: SeedOutcome {
            seed,
            families,
            violations,
            delivered: must_after.len() as u64,
        },
        plan,
    }
}

fn apply_action(cluster: &mut Cluster, action: &NemesisAction) {
    match action {
        NemesisAction::Cut { from, to } => cluster.sim_mut().link_mut().cut(*from, *to),
        NemesisAction::Heal { from, to } => cluster.sim_mut().link_mut().heal(*from, *to),
        NemesisAction::SetLink(config) => cluster.sim_mut().link_mut().set_config(config.clone()),
        NemesisAction::RestartDeployment => cluster.sim_mut().restart_deployment(),
    }
}

fn is_halted(cluster: &mut Cluster, p: ProcessId) -> bool {
    cluster
        .sim()
        .actor(p)
        .map(|a| a.inner().is_halted())
        .unwrap_or(false)
}

/// Everyone is up and no process disagrees about whether an identity was
/// delivered (each may still be pending everywhere — that only matters for
/// Termination, which the caller checks after convergence).
fn delivery_converged(sim: &Simulation<FramedAbcast>, ids: &BTreeSet<MsgId>) -> bool {
    let processes: Vec<ProcessId> = sim.processes().iter().collect();
    if !processes.iter().all(|p| sim.is_up(*p)) {
        return false;
    }
    for id in ids {
        let mut any = false;
        let mut all = true;
        for p in &processes {
            let delivered = sim.actor(*p).map(|a| a.is_delivered(*id)).unwrap_or(false);
            any |= delivered;
            all &= delivered;
        }
        if any && !all {
            return false;
        }
    }
    true
}

/// Appends a torn record to a WAL file: a header that promises more
/// payload than follows, as a crash mid-append would leave.
fn append_torn_tail(path: &std::path::Path) {
    use std::io::Write as _;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&1_000u32.to_le_bytes()); // len: promises 1000 bytes
    bytes.extend_from_slice(&0xDEAD_BEEF_u32.to_le_bytes()); // bogus crc
    bytes.extend_from_slice(&[0x42; 24]); // ...but only 24 arrive
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(path)
        .expect("open WAL for torn-tail append");
    file.write_all(&bytes).expect("append torn tail");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_seed_runs_clean_and_reports_its_families() {
        let run = run_seed_detailed(3);
        assert!(
            run.outcome.violations.is_empty(),
            "seed 3 violations: {:#?}",
            run.outcome.violations
        );
        assert_eq!(run.outcome.seed, 3);
        // Deterministic: the same seed reports the same outcome.
        let again = run_seed_detailed(3);
        assert_eq!(run.outcome.families, again.outcome.families);
        assert_eq!(run.outcome.delivered, again.outcome.delivered);
    }
}
