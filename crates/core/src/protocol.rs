//! The atomic broadcast protocol for asynchronous crash-recovery systems.
//!
//! [`AtomicBroadcast`] implements both variants described in the paper with
//! one state machine, selected by [`ProtocolConfig`]:
//!
//! * the **basic protocol** of Section 4 (Figure 2): rounds of consensus
//!   over the `Unordered` set, a periodic gossip task, and *no* stable-log
//!   operation beyond the proposal that the consensus substrate itself
//!   logs; recovery replays the consensus log;
//! * the **alternative protocol** of Section 5 (Figures 3–4): periodic
//!   `(k, Agreed)` checkpoints for faster recovery, state-transfer messages
//!   for processes more than Δ rounds behind, logging of the `Unordered`
//!   set so `A-broadcast` can return early and batch, incremental logging,
//!   and application-level checkpoints that bound log growth.
//!
//! The paper's concurrent tasks map onto the event-driven actor as follows:
//!
//! | Paper | Here |
//! |-------|------|
//! | `upon A-broadcast(m)` | [`AtomicBroadcast::a_broadcast`] / `on_client_request` |
//! | sequencer task | the internal `try_advance` step, re-run after every event |
//! | gossip task | the [`GOSSIP_TIMER`] handler |
//! | checkpoint task (Fig. 4) | the [`CHECKPOINT_TIMER`] handler |
//! | `upon receive gossip/state` | [`Actor::on_message`] |
//! | `upon initialization or recovery` | [`Actor::on_start`] |
//! | `A-deliver-sequence()` | [`AtomicBroadcast::agreed`] / [`AtomicBroadcast::delivered_messages`] |

use std::collections::{BTreeMap, BTreeSet};

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use abcast_consensus::{ConsensusConfig, MultiConsensus, CONSENSUS_TIMER_SPAN};
use abcast_net::{run_step_checked, Actor, ActorContext, MappedContext, TimerId};
use abcast_storage::{
    keys, FullSetLogger, IncrementalSetLogger, SetLogger, SnapshotDeltaPolicy, StorageKey,
    TypedStorageExt, WriteBatch,
};
use abcast_types::{
    AppMessage, LoggingPolicy, MsgId, Payload, ProcessId, ProtocolConfig, Result, Round, SimTime,
};

use crate::message::AbcastMsg;
use crate::queues::{AgreedQueue, AppCheckpoint, Batch, DecisionBuffer, UnorderedSet};

/// Timer of the gossip task.
pub const GOSSIP_TIMER: TimerId = TimerId::new(0);
/// Timer of the checkpoint task (alternative protocol only).
pub const CHECKPOINT_TIMER: TimerId = TimerId::new(1);
/// Base of the timer namespace delegated to the consensus substrate.
const CONSENSUS_TIMER_BASE: u64 = 16;

/// Something the protocol hands to the local application.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeliveryEvent {
    /// A message was A-delivered; apply it to the application state.
    Deliver(AppMessage),
    /// A state transfer replaced the local history: reset the application
    /// to this checkpoint before applying subsequent deliveries.
    InstallCheckpoint(AppCheckpoint),
}

/// The `A-checkpoint()` upcall of Section 5.2 (Figure 5).
///
/// When the protocol compacts the delivered prefix it asks the application
/// for a serialized state that logically contains the `covered` messages
/// (cumulatively: every message passed to this provider so far).  The
/// default [`NullCheckpointProvider`] returns an empty state, which still
/// bounds the queue and the logs — it just carries no application data in
/// state transfers.
pub trait CheckpointProvider: Send {
    /// Folds `covered` into the application checkpoint state and returns
    /// the new serialized state.
    fn checkpoint(&mut self, covered: &[AppMessage]) -> Payload;

    /// Re-seeds the provider from an existing checkpoint.
    ///
    /// Called on recovery (when a persisted `(k, Agreed)` record already
    /// carries an application checkpoint) and when a state transfer
    /// replaces the local history; subsequent [`CheckpointProvider::checkpoint`]
    /// calls must build on top of this state.  The default implementation
    /// ignores it, which is correct for providers that carry no state.
    fn restore(&mut self, checkpoint: &AppCheckpoint) {
        let _ = checkpoint;
    }
}

/// A checkpoint provider carrying no application state.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullCheckpointProvider;

impl CheckpointProvider for NullCheckpointProvider {
    fn checkpoint(&mut self, _covered: &[AppMessage]) -> Payload {
        Payload::new()
    }
}

/// Counters exposed by each protocol instance; the experiment harness reads
/// them after a run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolMetrics {
    /// Messages A-broadcast by this process.
    pub broadcasts: u64,
    /// Messages A-delivered by this process (including via replay, but not
    /// counting messages adopted through a state transfer, whether a full
    /// snapshot or a suffix).
    pub delivered_total: u64,
    /// Ordering rounds this process has completed.
    pub rounds_completed: u64,
    /// Rounds re-applied from the consensus log during the last recovery
    /// (the replay cost that Section 5.1's checkpoints shorten).
    pub replayed_rounds_on_recovery: u64,
    /// Rounds skipped thanks to state transfers (Section 5.3).
    pub skipped_rounds: u64,
    /// State-transfer messages sent to lagging peers (full or suffix).
    pub state_transfers_sent: u64,
    /// State-transfer messages applied locally (full or suffix).
    pub state_transfers_applied: u64,
    /// Suffix state transfers sent — the O(gap) fast path of the full
    /// snapshots counted in `state_transfers_sent`.
    pub suffix_transfers_sent: u64,
    /// Suffix state transfers applied locally.
    pub suffix_transfers_applied: u64,
    /// Application-level checkpoints taken (Section 5.2).
    pub app_checkpoints_taken: u64,
    /// `(k, Agreed)` checkpoint writes (snapshots plus delta records).
    pub agreed_checkpoints_logged: u64,
    /// Full `(k, Agreed)` snapshots written (each truncates the delta log).
    pub agreed_snapshots_logged: u64,
    /// Incremental `(k, new messages)` delta records appended — the
    /// O(delta) writes that replace the seed's clone-and-rewrite
    /// checkpoint.
    pub agreed_delta_records_logged: u64,
    /// Peak number of ordering rounds simultaneously in flight (consensus
    /// instances open but uncommitted, plus decisions parked in the reorder
    /// buffer).  Stays at 1 when `pipeline_depth` is 1 and decisions
    /// arrive in round order; a peer's announcement for round `k + 1`
    /// overtaking the one for `k` parks in the buffer and counts, even in
    /// a sequential run.  Experiment E12 reads it to confirm the pipeline
    /// actually filled.
    pub max_rounds_in_flight: u64,
    /// Stable-storage failures observed (failed step commits and failed
    /// recovery reads).  Each one fail-stops the process — it goes silent
    /// until it is crashed and recovered — so any non-zero count outside a
    /// fault-injection run is a bug.
    pub storage_failures: u64,
}

/// The atomic broadcast protocol state machine of one process.
pub struct AtomicBroadcast {
    config: ProtocolConfig,
    consensus: MultiConsensus<Batch>,

    // --- the paper's per-process variables (Figure 2 / Figure 3) ---
    kp: Round,
    unordered: UnorderedSet,
    agreed: AgreedQueue,
    gossip_k: Round,
    /// Decisions learned for rounds above `kp`, waiting for the lower
    /// rounds to commit.  With pipelining (`pipeline_depth > 1`) instances
    /// `kp .. kp + W` decide in arbitrary order; this buffer is what keeps
    /// *application* of the decided batches strictly sequential, so the
    /// delivery sequence is identical to a `W = 1` run.
    decisions: DecisionBuffer,

    // --- message identity management ---
    next_seq: u64,
    epoch_established: bool,

    // --- logging machinery ---
    unordered_logger: Box<dyn SetLogger<AppMessage> + Send>,
    /// Snapshot-vs-delta schedule for the `(k, Agreed)` checkpoint.
    agreed_policy: SnapshotDeltaPolicy,
    /// Round covered by the last persisted checkpoint record (so pure
    /// round advances are persisted even when no message was delivered).
    persisted_round: Round,
    /// `total_delivered` after committing each recent round, kept for the
    /// last Δ + slack rounds.  Lets the gossip handler compute exactly
    /// which suffix of `Agreed` a lagging peer is missing; volatile — after
    /// a crash the full-snapshot fallback covers until it refills.
    round_watermarks: BTreeMap<u64, u64>,
    /// Smallest delivery count for which "the last `total − count` explicit
    /// messages" is exactly the delivery-order suffix.  Compaction usually
    /// covers a delivery-order *prefix* of the explicit queue; when it
    /// instead punches a hole (covers a gap-closing message delivered
    /// *after* a still-explicit out-of-order one), positions below the
    /// current total stop mapping onto the explicit tail, so suffix
    /// replies below this floor must fall back to the full snapshot.
    suffix_floor: u64,

    // --- application interface ---
    checkpoint_provider: Box<dyn CheckpointProvider>,
    pending_deliveries: Vec<DeliveryEvent>,
    delivery_log: Vec<(SimTime, MsgId)>,

    /// Fail-stop latch: set when stable storage misbehaves (a step commit
    /// or a recovery read fails).  A halted process handles no further
    /// events and sends nothing — exactly a crash from the protocol's
    /// point of view, except the simulator keeps running.  Cleared only by
    /// rebuilding the actor (crash + recovery).
    halted: bool,
    /// Human-readable cause of the halt, for fuzzer diagnostics.
    halt_cause: Option<String>,

    metrics: ProtocolMetrics,
}

impl AtomicBroadcast {
    /// Creates a protocol instance with the given protocol and consensus
    /// configurations and no application checkpoint state.
    pub fn new(config: ProtocolConfig, consensus: ConsensusConfig) -> Self {
        AtomicBroadcast::with_checkpoint_provider(config, consensus, NullCheckpointProvider)
    }

    /// Creates the basic protocol of Section 4 over a crash-recovery
    /// consensus.
    pub fn basic() -> Self {
        AtomicBroadcast::new(ProtocolConfig::basic(), ConsensusConfig::crash_recovery())
    }

    /// Creates the alternative protocol of Section 5 over a crash-recovery
    /// consensus.
    pub fn alternative() -> Self {
        AtomicBroadcast::new(
            ProtocolConfig::alternative(),
            ConsensusConfig::crash_recovery(),
        )
    }

    /// Creates the Chandra–Toueg-style crash-stop baseline used by
    /// experiment E7: the same transformation, but crashes are assumed
    /// definitive so neither the broadcast layer nor the consensus
    /// substrate logs anything.
    pub fn chandra_toueg_baseline() -> Self {
        AtomicBroadcast::new(ProtocolConfig::basic(), ConsensusConfig::crash_stop())
    }

    /// Creates a protocol instance with an application-supplied
    /// `A-checkpoint` upcall (Section 5.2, Figure 5).
    pub fn with_checkpoint_provider(
        config: ProtocolConfig,
        consensus: ConsensusConfig,
        provider: impl CheckpointProvider + 'static,
    ) -> Self {
        let unordered_logger: Box<dyn SetLogger<AppMessage> + Send> = if config.incremental_logging
        {
            Box::new(IncrementalSetLogger::new(keys::unordered_incremental()))
        } else {
            Box::new(FullSetLogger::new(keys::unordered()))
        };
        let agreed_policy = SnapshotDeltaPolicy::new(config.checkpoint_snapshot_every);
        AtomicBroadcast {
            config,
            consensus: MultiConsensus::new(consensus),
            kp: Round::ZERO,
            unordered: UnorderedSet::new(),
            agreed: AgreedQueue::new(),
            gossip_k: Round::ZERO,
            decisions: DecisionBuffer::new(),
            next_seq: 0,
            epoch_established: false,
            unordered_logger,
            agreed_policy,
            persisted_round: Round::ZERO,
            round_watermarks: BTreeMap::new(),
            suffix_floor: 0,
            checkpoint_provider: Box::new(provider),
            pending_deliveries: Vec::new(),
            delivery_log: Vec::new(),
            halted: false,
            halt_cause: None,
            metrics: ProtocolMetrics::default(),
        }
    }

    /// `true` if this process fail-stopped on a storage failure and is
    /// waiting to be crashed and recovered.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The storage failure that halted this process, if any.
    pub fn halt_cause(&self) -> Option<&str> {
        self.halt_cause.as_deref()
    }

    /// Fail-stops the process: records the failure and goes silent until
    /// crash + recovery.  The paper's model has no "limping" processes —
    /// a process whose stable storage misbehaves must act crashed, because
    /// continuing without the write (or without the logged state a read
    /// would have returned) can contradict what it already told its peers.
    fn halt_on_storage_failure(&mut self, what: &str, e: &abcast_types::AbcastError) {
        self.metrics.storage_failures += 1;
        if !self.halted {
            self.halted = true;
            self.halt_cause = Some(format!("{what}: {e}"));
        }
    }

    /// Applies a step's commit outcome: a failed commit halts the process.
    fn note_commit(&mut self, commit: Result<()>) {
        if let Err(e) = commit {
            self.halt_on_storage_failure("step commit", &e);
        }
    }

    // ------------------------------------------------------------------
    // Public (application-facing) interface
    // ------------------------------------------------------------------

    /// `A-broadcast(m)`: submits `payload` for totally ordered delivery and
    /// returns the identity assigned to it.
    ///
    /// Under [`BatchingPolicy::WaitForAgreed`] (the basic protocol) the
    /// invocation is logically complete only once the message appears in
    /// the `Agreed` queue; under [`BatchingPolicy::EarlyReturn`] the
    /// `Unordered` set is logged before this method returns, which is what
    /// allows the early completion (Section 5.4).
    pub fn a_broadcast(
        &mut self,
        payload: impl Into<Payload>,
        ctx: &mut dyn ActorContext<AbcastMsg>,
    ) -> MsgId {
        let payload = payload.into();
        let (id, commit) = run_step_checked(ctx, |ctx| self.broadcast_step(payload, ctx));
        self.note_commit(commit);
        id
    }

    /// The body of `A-broadcast`, run under a one-barrier batching scope:
    /// the `Unordered` log entry and the consensus proposal it may trigger
    /// share a single durability barrier.
    fn broadcast_step(&mut self, payload: Payload, ctx: &mut dyn ActorContext<AbcastMsg>) -> MsgId {
        let id = self.assign_id(ctx);
        if self.halted {
            // Fail-stopped (possibly by the epoch read just above): the
            // submission is dropped, exactly as if the process had crashed
            // before accepting it.
            return id;
        }
        let message = AppMessage::new(id, payload);
        self.metrics.broadcasts += 1;
        if !self.agreed.contains(id) {
            self.unordered.insert(message);
        }
        match self.config.logging {
            LoggingPolicy::Minimal => {}
            LoggingPolicy::Checkpointing | LoggingPolicy::Naive => {
                self.persist_unordered(ctx);
                if self.config.logging == LoggingPolicy::Naive {
                    self.persist_everything(ctx);
                }
            }
        }
        self.try_advance(ctx);
        id
    }

    /// `A-deliver-sequence()`: the delivery sequence of this process.
    pub fn agreed(&self) -> &AgreedQueue {
        &self.agreed
    }

    /// The explicitly delivered messages (the part of the sequence after
    /// the application checkpoint), in delivery order.
    pub fn delivered_messages(&self) -> &[AppMessage] {
        self.agreed.messages()
    }

    /// The paper's `A-delivered(m, Δ_p)` predicate.
    pub fn is_delivered(&self, id: MsgId) -> bool {
        self.agreed.contains(id)
    }

    /// Drains the delivery events produced since the last call.  Embedding
    /// applications (replicated state machines) consume these to apply
    /// updates in delivery order.
    pub fn take_deliveries(&mut self) -> Vec<DeliveryEvent> {
        std::mem::take(&mut self.pending_deliveries)
    }

    /// The current round counter `k_p`.
    pub fn round(&self) -> Round {
        self.kp
    }

    /// Number of messages waiting to be ordered.
    pub fn unordered_len(&self) -> usize {
        self.unordered.len()
    }

    /// Number of ordering rounds currently in flight: consensus instances
    /// proposed but undecided, plus decisions parked in the reorder buffer
    /// waiting for a lower round.  At most `pipeline_depth` under normal
    /// operation.
    pub fn rounds_in_flight(&self) -> usize {
        self.consensus.undecided_in_flight() + self.decisions.len()
    }

    /// Number of consensus instances currently tracked by the substrate
    /// (decided and undecided).  Exposed so tests can assert that late
    /// traffic for forgotten rounds does not resurrect instances.
    pub fn consensus_instance_count(&self) -> usize {
        self.consensus.instance_count()
    }

    /// `true` if this process has proposed a value to consensus instance
    /// `k` — `Proposed_p[k] ≠ ⊥` read back through the consensus
    /// interface.
    pub fn has_proposed(&self, k: Round) -> bool {
        self.consensus.has_proposed(k)
    }

    /// Protocol counters.
    pub fn metrics(&self) -> &ProtocolMetrics {
        &self.metrics
    }

    /// Virtual times at which each message was locally A-delivered, in
    /// delivery order.  Used by the latency experiments.
    pub fn delivery_log(&self) -> &[(SimTime, MsgId)] {
        &self.delivery_log
    }

    /// The protocol configuration in force.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Identity management
    // ------------------------------------------------------------------

    fn assign_id(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) -> MsgId {
        if !self.epoch_established {
            self.establish_sequence_origin(ctx);
        }
        let id = MsgId::new(ctx.me(), self.next_seq);
        self.next_seq += 1;
        id
    }

    /// Establishes a local sequence-number origin that can never collide
    /// with identities assigned before a crash.
    ///
    /// * When the `Unordered` set is logged (alternative protocol), every
    ///   identity ever assigned is recoverable, so numbering simply resumes
    ///   after the highest recovered value.
    /// * Otherwise (basic protocol) a small persistent *broadcast epoch* is
    ///   bumped lazily on the first `A-broadcast` after each (re)start and
    ///   used as the high bits of the sequence number.  This is one slot
    ///   write per recovery-that-broadcasts, not a per-message log
    ///   operation.
    fn establish_sequence_origin(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        if self.config.logging.logs_unordered() {
            let me = ctx.me();
            let recovered_max = self
                .unordered
                .iter()
                .chain(self.agreed.messages().iter())
                .filter(|m| m.sender() == me)
                .map(|m| m.seq() + 1)
                .max()
                .unwrap_or(0)
                .max(
                    self.agreed
                        .checkpoint()
                        .vc
                        .get(me)
                        .map(|s| s + 1)
                        .unwrap_or(0),
                );
            self.next_seq = self.next_seq.max(recovered_max);
        } else {
            let key = StorageKey::new("abcast/broadcast-epoch");
            let epoch: u64 = match ctx.storage().load_value(&key) {
                Ok(stored) => stored.unwrap_or(0) + 1,
                Err(e) => {
                    // Guessing an epoch after a failed read risks reusing
                    // identities assigned before a crash (an integrity
                    // violation); fail-stop and retry after recovery.
                    self.halt_on_storage_failure("broadcast-epoch read", &e);
                    return;
                }
            };
            // Staged write: its durability is settled by the step commit.
            let _ = ctx.storage().store_value(&key, &epoch);
            self.next_seq = self.next_seq.max(epoch << 32);
        }
        self.epoch_established = true;
    }

    // ------------------------------------------------------------------
    // Logging helpers
    // ------------------------------------------------------------------

    fn persist_unordered(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        let set: std::collections::BTreeSet<AppMessage> = self.unordered.iter().cloned().collect();
        let _ = self.unordered_logger.persist(ctx.storage().as_ref(), &set);
    }

    /// Persists the `(k, Agreed)` checkpoint *incrementally* (Section 5.1
    /// via the Section 5.5 optimisation): normally one delta record holding
    /// only the messages delivered since the previous checkpoint; a full
    /// snapshot (which truncates the delta log) when the
    /// [`SnapshotDeltaPolicy`] schedules one or the delta cannot be
    /// expressed.  When nothing changed, nothing is written at all.
    ///
    /// Invariant relied upon for the delta path: every message not yet
    /// covered by a persisted record sits at the *tail* of the explicit
    /// queue.  The checkpoint task maintains it by persisting *before*
    /// compacting, and state-transfer adoption invalidates the chain.
    fn persist_agreed(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        if self.agreed.is_empty() && self.kp == Round::ZERO {
            // Nothing has ever been delivered and no round completed: the
            // checkpoint task fired before the protocol did any work.
            // There is nothing to persist (and the policy's mandatory
            // first snapshot would otherwise write an empty record).
            return;
        }
        let total = self.agreed.total_delivered();
        let explicit = self.agreed.messages();
        let new_messages = total.saturating_sub(self.agreed_policy.persisted_units()) as usize;
        if self.agreed_policy.needs_snapshot(total) || new_messages > explicit.len() {
            let record = (self.kp, self.agreed.clone());
            let mut batch = WriteBatch::new();
            batch.store_value(&keys::agreed_checkpoint(), &record);
            batch.remove(&keys::agreed_delta());
            let _ = ctx.storage().commit_batch(batch); // xlint:allow(B2) — staged view: this merges into the step batch; the single barrier is still paid in StepContext::finish
            self.agreed_policy.note_snapshot(total);
            self.persisted_round = self.kp;
            self.metrics.agreed_snapshots_logged += 1;
            self.metrics.agreed_checkpoints_logged += 1;
        } else if new_messages > 0 || self.kp != self.persisted_round {
            let tail: Vec<AppMessage> = explicit[explicit.len() - new_messages..].to_vec(); // xlint:allow(Z1) — the delta record needs an owned tail; each AppMessage clones a refcounted Bytes handle
            let _ = ctx
                .storage()
                .append_value(&keys::agreed_delta(), &(self.kp, tail));
            self.agreed_policy.note_delta(total);
            self.persisted_round = self.kp;
            self.metrics.agreed_delta_records_logged += 1;
            self.metrics.agreed_checkpoints_logged += 1;
        }
        // Unchanged since the previous checkpoint: the write is saved
        // entirely (Section 5.5).
    }

    fn persist_everything(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        // The "naive" strawman of experiment E1: every variable on every
        // update, always as a full rewrite.
        self.agreed_policy.invalidate();
        self.persist_agreed(ctx);
        self.persist_unordered(ctx);
    }

    // ------------------------------------------------------------------
    // The sequencer (Figure 2) as an idempotent advance function
    // ------------------------------------------------------------------

    fn try_advance(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        loop {
            // `wait until decided(k_p, result)` — out-of-order decisions
            // wait in the reorder buffer until their round is the next to
            // commit; the substrate query covers decisions known outside
            // the event path (recovered from the local log, or learned
            // before the buffer existed).
            let decided = self
                .decisions
                .take(self.kp)
                .or_else(|| self.consensus.decision(self.kp).cloned());
            if let Some(result) = decided {
                self.commit_round(&result, ctx);
                continue;
            }
            // `if Proposed_p[k_p] = ⊥ then wait until
            //      Unordered_p ≠ ∅  ∨  gossip-k_p > k_p;
            //  Proposed_p[k_p] ← Unordered_p; log; propose`
            // — generalised over the pipeline window `k_p .. k_p + W`.
            self.open_pipeline(ctx);
            break;
        }
    }

    /// Opens consensus instances for the pipeline window `k_p .. k_p + W`
    /// (Figure 2's sequencer when `W = 1`): each un-proposed round in the
    /// window is proposed the pending messages not already carried by a
    /// round below it, so rounds gossip and run their ballots concurrently
    /// without proposing the same message twice.
    ///
    /// The exclusion is optimistic for undecided rounds — if another
    /// process's proposal wins instance `k`, our messages stay in
    /// `Unordered` and re-enter the window once `k` commits, exactly as in
    /// the sequential protocol.  An empty round is only opened when a peer
    /// is already past it (`gossip_k`), again as in the sequential run.
    fn open_pipeline(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        let depth = self.config.pipeline_depth.max(1);
        // Fast paths for the steady state — `try_advance` runs after every
        // event, and most events leave nothing to open: either there is
        // nothing to order and no peer is ahead (every proposal in the
        // walk below would come out empty), or every round of the window
        // already carries a batch.  Skip the exclusion-set work then.
        let idle = self.unordered.is_empty() && self.gossip_k <= self.kp;
        let window_full = !idle
            && (0..depth).all(|offset| {
                let k = Round::new(self.kp.value() + offset);
                self.consensus.decision(k).is_some() || self.consensus.has_proposed(k)
            });
        if idle || window_full {
            self.note_rounds_in_flight();
            return;
        }
        let max_batch = self.config.batching.max_batch();
        let mut in_flight: BTreeSet<MsgId> = BTreeSet::new();
        for offset in 0..depth {
            let k = Round::new(self.kp.value() + offset);
            // A round already carries a batch when it has decided (possibly
            // on a peer's proposal we learned about before committing the
            // rounds below) or when this process has proposed to it:
            // exclude what it will (or may) deliver from the deeper rounds
            // and do not propose into it again.
            let fixed = self
                .consensus
                .decision(k)
                .or_else(|| self.consensus.proposal(k));
            if let Some(batch) = fixed {
                in_flight.extend(batch.iter().map(AppMessage::id));
                continue;
            }
            let proposal: Batch = self
                .unordered
                .iter()
                .filter(|m| !in_flight.contains(&m.id()))
                .take(max_batch)
                .cloned()
                .collect();
            if proposal.is_empty() && self.gossip_k <= k {
                // Nothing left to order at this depth and no peer is ahead
                // of it: do not open an empty round.
                break;
            }
            in_flight.extend(proposal.iter().map(AppMessage::id));
            let mut consensus_ctx =
                MappedContext::new(ctx, AbcastMsg::Consensus, CONSENSUS_TIMER_BASE);
            self.consensus.propose(k, proposal, &mut consensus_ctx);
        }
        self.note_rounds_in_flight();
    }

    fn note_rounds_in_flight(&mut self) {
        let open = self.rounds_in_flight() as u64;
        if open > self.metrics.max_rounds_in_flight {
            self.metrics.max_rounds_in_flight = open;
        }
    }

    /// Parks freshly learned decisions in the reorder buffer.  Rounds the
    /// process has already committed (possible after a state-transfer jump
    /// re-learns an old instance) are dropped on the floor — their batches
    /// are in `Agreed` already.
    fn buffer_decisions(&mut self, events: Vec<abcast_consensus::DecisionEvent<Batch>>) {
        for event in events {
            if event.instance >= self.kp {
                self.decisions.insert(event.instance, event.value);
            }
        }
    }

    fn commit_round(&mut self, result: &Batch, ctx: &mut dyn ActorContext<AbcastMsg>) {
        let newly = self.agreed.append_batch(result);
        let now = ctx.now();
        for m in &newly {
            self.delivery_log.push((now, m.id()));
            self.pending_deliveries.push(DeliveryEvent::Deliver(m.clone()));
        }
        self.metrics.delivered_total += newly.len() as u64;
        self.metrics.rounds_completed += 1;
        self.kp = self.kp.next();
        self.note_watermark();
        self.unordered.subtract_agreed(&self.agreed);
        if self.config.logging == LoggingPolicy::Naive {
            self.persist_everything(ctx);
        }
    }

    /// Slack beyond Δ for which per-round delivery watermarks are kept —
    /// matches the consensus-record retention window, so any peer that
    /// would catch up by replay rather than state transfer never needs a
    /// watermark.
    const WATERMARK_SLACK: u64 = 4;

    /// Records how many messages a process at the *current* round has
    /// delivered, and prunes watermarks that no state transfer can use
    /// any more.  Only maintained when state transfer is enabled.
    fn note_watermark(&mut self) {
        let Some(delta) = self.config.recovery.delta() else {
            return;
        };
        self.round_watermarks
            .insert(self.kp.value(), self.agreed.total_delivered());
        let cutoff = self
            .kp
            .value()
            .saturating_sub(delta + Self::WATERMARK_SLACK);
        if cutoff > 0 {
            self.round_watermarks = self.round_watermarks.split_off(&cutoff);
        }
    }

    // ------------------------------------------------------------------
    // Recovery (Figure 2 `replay`, Figure 3 `retrieve`)
    // ------------------------------------------------------------------

    /// Retrieves the persisted protocol state.  A storage *read* error is
    /// returned, not treated as "nothing stored": recovering with amnesia
    /// (an empty `Agreed` prefix, a forgotten `Unordered` set) would let
    /// this process re-deliver or re-order messages it already settled —
    /// the caller fail-stops instead.
    fn recover_state(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) -> Result<()> {
        // Alternative protocol: retrieve (k_p, Agreed_p) and Unordered_p.
        // The persisted image is the last full snapshot plus the delta
        // records appended since; replay applies the deltas in order
        // (append is idempotent, so a delta that raced a snapshot is
        // harmless).
        if self.config.logging.logs_agreed() {
            let mut recovered_any = false;
            if let Some((kp, agreed)) = ctx
                .storage()
                .load_value::<(Round, AgreedQueue)>(&keys::agreed_checkpoint())?
            {
                self.kp = kp;
                self.agreed = agreed;
                recovered_any = true;
            }
            let mut replayed_deltas = 0u64;
            {
                let deltas = ctx
                    .storage()
                    .load_log_values::<(Round, Vec<AppMessage>)>(&keys::agreed_delta())?;
                for (round, msgs) in deltas {
                    self.agreed.append_in_order(&msgs);
                    if round > self.kp {
                        self.kp = round;
                    }
                    replayed_deltas += 1;
                    recovered_any = true;
                }
            }
            if recovered_any {
                // The local application must be rebuilt from the recovered
                // sequence: its checkpoint first, then the explicit suffix.
                self.checkpoint_provider.restore(self.agreed.checkpoint());
                self.pending_deliveries.push(DeliveryEvent::InstallCheckpoint(
                    self.agreed.checkpoint().clone(),
                ));
                for m in self.agreed.messages() {
                    self.pending_deliveries
                        .push(DeliveryEvent::Deliver(m.clone()));
                }
                self.agreed_policy
                    .note_recovered(self.agreed.total_delivered(), replayed_deltas);
                self.persisted_round = self.kp;
                // The recovered queue may carry pre-crash compaction holes
                // this process no longer knows about: only counts at or
                // beyond the recovered total are provably suffix-safe.
                self.suffix_floor = self.agreed.total_delivered();
            }
        }
        if self.config.logging.logs_unordered() {
            let recovered = self.unordered_logger.recover(ctx.storage().as_ref())?;
            self.unordered.insert_all(recovered);
        }

        // `replay()`: re-apply the decisions of every round proposed to (or
        // already decided) since the retrieved checkpoint.  Proposals are
        // re-issued implicitly: they are already logged inside the consensus
        // substrate and `propose` is idempotent, so it suffices to wait for
        // the decisions, which the consensus layer re-learns by querying.
        let mut replayed = 0;
        loop {
            if let Some(result) = self.consensus.decision(self.kp).cloned() {
                let newly = self.agreed.append_batch(&result);
                for m in &newly {
                    self.pending_deliveries.push(DeliveryEvent::Deliver(m.clone()));
                    self.delivery_log.push((ctx.now(), m.id()));
                }
                self.metrics.delivered_total += newly.len() as u64;
                self.metrics.rounds_completed += 1;
                self.kp = self.kp.next();
                self.note_watermark();
                replayed += 1;
                continue;
            }
            break;
        }
        self.metrics.replayed_rounds_on_recovery = replayed;
        self.note_watermark();
        self.unordered.subtract_agreed(&self.agreed);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Gossip, state transfer, checkpointing
    // ------------------------------------------------------------------

    fn on_gossip(
        &mut self,
        from: ProcessId,
        round: Round,
        unordered: Vec<AppMessage>,
        ctx: &mut dyn ActorContext<AbcastMsg>,
    ) {
        // Unordered_p ← (Unordered_p ∪ U_q) ⊖ Agreed_p
        for m in unordered {
            if !self.agreed.contains(m.id()) {
                self.unordered.insert(m);
            }
        }
        if round > self.kp {
            // q is ahead of us.
            if round > self.gossip_k {
                self.gossip_k = round;
            }
        } else if let Some(delta) = self.config.recovery.delta() {
            // Alternative protocol, Figure 3 line (d): if we are ahead of q
            // by more than Δ, ship it our state — only the suffix it is
            // missing when we still know its delivery count, the whole
            // queue otherwise.
            if self.kp.value() > round.value() + delta {
                if let Some(prev) = self.kp.prev() {
                    let reply = self.state_reply_for(round, prev);
                    ctx.send(from, reply);
                    self.metrics.state_transfers_sent += 1;
                }
            }
        }
        self.try_advance(ctx);
    }

    /// Builds the state-transfer reply for a peer gossiping `peer_round`:
    /// the missing suffix of `Agreed` when the watermark of that round is
    /// still known *and* the corresponding messages are still explicit in
    /// the queue; the full snapshot as the fallback (watermarks are
    /// volatile and the prefix may have been compacted into the
    /// application checkpoint).
    fn state_reply_for(&mut self, peer_round: Round, prev: Round) -> AbcastMsg {
        let total = self.agreed.total_delivered();
        let explicit = self.agreed.messages();
        let explicit_start = total - explicit.len() as u64;
        let peer_count = if peer_round.value() == 0 {
            // Every process starts with an empty queue at round 0.
            Some(0)
        } else {
            self.round_watermarks.get(&peer_round.value()).copied()
        };
        match peer_count {
            Some(count)
                if count >= explicit_start && count >= self.suffix_floor && count <= total => {
                let suffix = explicit[(count - explicit_start) as usize..].to_vec(); // xlint:allow(Z1) — suffix transfer owns its slice; each AppMessage clones a refcounted Bytes handle
                self.metrics.suffix_transfers_sent += 1;
                AbcastMsg::StateSuffix {
                    round: prev,
                    from_count: count,
                    messages: suffix,
                }
            }
            _ => AbcastMsg::State {
                round: prev,
                agreed: self.agreed.clone(),
            },
        }
    }

    fn on_state(
        &mut self,
        round: Round,
        agreed: AgreedQueue,
        ctx: &mut dyn ActorContext<AbcastMsg>,
    ) {
        let Some(delta) = self.config.recovery.delta() else {
            return; // basic protocol: state messages are not part of it
        };
        // Figure 3 line (e): apply the snapshot only if we are far behind;
        // otherwise just note the de-synchronisation.
        if self.kp.value() + delta <= round.value() {
            self.agreed.adopt(agreed.clone());
            // The adopted queue's compaction history is unknown: serve
            // suffixes only for counts at or beyond its total.  Its
            // history is also unrelated to the local delta chain: the next
            // checkpoint must be a full snapshot.
            self.suffix_floor = self.agreed.total_delivered();
            self.agreed_policy.invalidate();
            // The application must restart from the embedded checkpoint and
            // re-apply the explicit suffix; future application checkpoints
            // build on the adopted state.
            self.checkpoint_provider.restore(agreed.checkpoint());
            self.pending_deliveries
                .push(DeliveryEvent::InstallCheckpoint(agreed.checkpoint().clone()));
            for m in agreed.messages() {
                self.pending_deliveries
                    .push(DeliveryEvent::Deliver(m.clone()));
            }
            self.complete_state_transfer(round, ctx);
        } else if round > self.gossip_k {
            self.gossip_k = round;
        }
        self.try_advance(ctx);
    }

    /// Shared epilogue of both state-transfer paths, run after the local
    /// queue was updated: jump past the transferred rounds, refresh the
    /// watermark and the pending set, count the transfer and persist the
    /// new state.
    fn complete_state_transfer(&mut self, round: Round, ctx: &mut dyn ActorContext<AbcastMsg>) {
        let skipped = round.next().value() - self.kp.value();
        self.kp = round.next();
        // Buffered decisions for jumped-over rounds are covered by the
        // transferred state; applying them now would be out of order.  The
        // same goes for our own still-undecided instances down there: the
        // transfer proves those rounds decided globally, and with peers
        // dropping traffic below their forget watermark the instances
        // would otherwise query forever without an answer.
        self.decisions.drop_below(self.kp);
        self.consensus.abandon_undecided_below(self.kp);
        self.note_watermark();
        self.unordered.subtract_agreed(&self.agreed);
        self.metrics.state_transfers_applied += 1;
        self.metrics.skipped_rounds += skipped;
        if self.config.logging.logs_agreed() {
            self.persist_agreed(ctx);
        }
        // Move the forget watermark (and the record cleanup) up right away
        // instead of waiting for the next checkpoint tick.  The watermark
        // lands at `kp − retention`, not at `kp`: jumped rounds inside the
        // retention window can still be lazily recreated by late traffic,
        // but that residue is bounded by the window and reclaimed once the
        // cutoff passes it (`abandon_undecided_below` in the discard).
        self.discard_old_consensus_records(ctx);
    }

    /// Applies a suffix state transfer: the missing part of the canonical
    /// delivery sequence, appended in order on top of the local prefix.
    ///
    /// The suffix only applies when the local queue holds *exactly* the
    /// prefix the sender assumed (`from_count` delivered messages) — the
    /// delivery sequence up to a round is deterministic, so equal counts
    /// mean equal prefixes.  Anything else falls back to noting the
    /// de-synchronisation, which keeps gossip retrying until a matching
    /// suffix or a full snapshot arrives.
    fn on_state_suffix(
        &mut self,
        round: Round,
        from_count: u64,
        messages: Vec<AppMessage>,
        ctx: &mut dyn ActorContext<AbcastMsg>,
    ) {
        let Some(delta) = self.config.recovery.delta() else {
            return; // basic protocol: state messages are not part of it
        };
        if self.kp.value() + delta <= round.value()
            && self.agreed.total_delivered() == from_count
        {
            // Like a full snapshot, the installed messages count as
            // adopted, not as local deliveries (`delivered_total` stays
            // untouched); unlike a snapshot, they extend the local prefix
            // in place, so plain Deliver events suffice and the appended
            // tail persists as one delta record in the shared epilogue.
            let newly = self.agreed.append_in_order(&messages);
            for m in &newly {
                self.pending_deliveries.push(DeliveryEvent::Deliver(m.clone()));
            }
            self.metrics.suffix_transfers_applied += 1;
            self.complete_state_transfer(round, ctx);
        } else if round > self.gossip_k {
            self.gossip_k = round;
        }
        self.try_advance(ctx);
    }

    fn run_checkpoint_task(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        // Persist *before* compacting: this keeps the delta invariant (all
        // unpersisted messages are the tail of the explicit queue), so the
        // periodic checkpoint writes O(messages since last checkpoint)
        // instead of cloning and rewriting the whole agreed sequence.  The
        // compaction that follows is volatile-state-only bookkeeping; its
        // effect reaches stable storage with the next full snapshot.
        if self.config.logging.logs_agreed() {
            self.persist_agreed(ctx);
        }
        if self.config.application_checkpoints {
            // Figure 4 line (b): Agreed ← (A-checkpoint(Agreed), VC(Agreed)).
            let pre_compact: Vec<MsgId> =
                self.agreed.messages().iter().map(AppMessage::id).collect();
            let covered = self.agreed.compact(Payload::new());
            if !covered.is_empty() {
                // If compaction covered anything other than the
                // delivery-order prefix of the explicit queue, positions no
                // longer map onto the explicit tail: raise the suffix
                // floor so state replies below it use the full snapshot.
                let covered_a_prefix = covered
                    .iter()
                    .map(AppMessage::id)
                    .eq(pre_compact.iter().copied().take(covered.len()));
                if !covered_a_prefix {
                    self.suffix_floor = self.agreed.total_delivered();
                }
                let state = self.checkpoint_provider.checkpoint(&covered);
                self.agreed.set_checkpoint_state(state);
                self.metrics.app_checkpoints_taken += 1;
            }
            // Figure 4 line (c): Proposed_p[i], i < k_p can be discarded
            // from the log, and so can the per-instance consensus records.
            self.discard_old_consensus_records(ctx);
            // The logged Unordered set can likewise be truncated to the
            // messages that are still pending: everything delivered is now
            // covered by the (k, Agreed) record or the application
            // checkpoint.
            if self.config.logging.logs_unordered() {
                let _ = ctx.storage().remove(&keys::unordered());
                let _ = ctx.storage().remove(&keys::unordered_incremental());
                self.unordered_logger.forget();
                self.persist_unordered(ctx);
            }
        }
        // Advisory GC hint for the storage backend: everything at or below
        // `persisted_round` is now covered by the durable `(k, Agreed)`
        // image, so log records from earlier rounds are dead weight.  The
        // segmented WAL uses this to schedule background compaction; other
        // backends ignore it.
        ctx.storage().note_checkpoint(self.persisted_round);
    }

    fn discard_old_consensus_records(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        // Old instances may only be discarded if a lagging peer has another
        // way to obtain their outcome — the state transfer of Section 5.3.
        // Without state transfer every instance must stay answerable, so
        // nothing is discarded.
        let Some(delta) = self.config.recovery.delta() else {
            return;
        };
        // Keep a window of recent instances around even though we have
        // delivered them: peers that are at most Δ rounds behind catch up by
        // re-running those instances (the paper's replay path) rather than
        // through a state transfer, so their decisions must stay answerable.
        // Anything older is only reachable through a state transfer, which
        // the gossip handler provides.
        let retention = delta + 4;
        // Write-ahead bound: a round's consensus records may only be
        // discarded once the `(k, Agreed)` image covering it is durable
        // (Figure 4 line *c* runs *after* line *b*'s checkpoint).  `kp`
        // alone is not enough — recovery rebuilds rounds beyond the logged
        // checkpoint by replaying `decided` records, so until the next
        // agreed checkpoint those records ARE the durable copy of the
        // delivery sequence; discarding them and crashing would roll the
        // recovered sequence back behind rounds the process already settled
        // (and re-running consensus for such a round can split the cluster).
        let cutoff = Round::new(
            self.kp
                .value()
                .saturating_sub(retention)
                .min(self.persisted_round.value()),
        );
        self.consensus.forget_decided_below(cutoff, ctx.storage());
        // Below the cutoff, *undecided* instances can only be zombies —
        // rounds below `kp` are committed, hence decided globally; a
        // proposal-less instance there was resurrected by late traffic
        // that slipped in above the previous watermark (the drop guard
        // exempts tracked instances, and `forget_decided_below` retains
        // undecided ones, so nothing else ever reclaims them).
        self.consensus.abandon_undecided_below(cutoff);
        match ctx.storage().keys() {
            Ok(stored) => {
                for key in stored {
                    if let Some(instance) = keys::parse_consensus_instance(&key) {
                        if instance < cutoff {
                            // Staged removal; durability settled by the
                            // step commit.
                            let _ = ctx.storage().remove(&key);
                        }
                    }
                }
            }
            // A failed key scan means the disk is unreliable: skipping the
            // GC would be safe, but a half-trusted storage is not — apply
            // the same fail-stop discipline as every other read error.
            Err(e) => self.halt_on_storage_failure("consensus GC key scan", &e),
        }
    }
}

impl AtomicBroadcast {
    /// `on_start` body; runs under a batching scope (see [`Actor::on_start`]).
    fn start_step(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        // Volatile bookkeeping of the incremental logger is lost on crash.
        self.unordered_logger.forget();

        let consensus_recovery = {
            let mut consensus_ctx =
                MappedContext::new(ctx, AbcastMsg::Consensus, CONSENSUS_TIMER_BASE);
            self.consensus.on_start(&mut consensus_ctx)
        };
        if let Err(e) = consensus_recovery {
            self.halt_on_storage_failure("consensus recovery", &e);
            return;
        }

        if let Err(e) = self.recover_state(ctx) {
            self.halt_on_storage_failure("state recovery", &e);
            return;
        }
        // The forget watermark is volatile: without re-deriving it from the
        // recovered round, stale traffic arriving before the first
        // checkpoint tick could resurrect long-forgotten instances (the
        // window the watermark exists to close).  The discard is also
        // idempotent over the storage records, so replaying it is free.
        self.discard_old_consensus_records(ctx);
        // Consensus recovery rebuilds every instance that still has
        // records — including proposals a pre-crash state transfer jumped
        // over (abandonment is in-memory; the records go with the next
        // checkpoint's discard).  Every round below the recovered `kp` is
        // committed, hence decided globally: rebuilt *undecided* instances
        // down there are zombies and are abandoned again.
        self.consensus.abandon_undecided_below(self.kp);
        ctx.set_timer(GOSSIP_TIMER, self.config.timers.gossip_period);
        if self.config.logging.logs_agreed() || self.config.application_checkpoints {
            ctx.set_timer(CHECKPOINT_TIMER, self.config.timers.checkpoint_period);
        }
        self.try_advance(ctx);
    }

    /// `on_message` body; runs under a batching scope.
    fn message_step(
        &mut self,
        from: ProcessId,
        msg: AbcastMsg,
        ctx: &mut dyn ActorContext<AbcastMsg>,
    ) {
        match msg {
            AbcastMsg::Gossip { round, unordered } => self.on_gossip(from, round, unordered, ctx),
            AbcastMsg::State { round, agreed } => self.on_state(round, agreed, ctx),
            AbcastMsg::StateSuffix {
                round,
                from_count,
                messages,
            } => self.on_state_suffix(round, from_count, messages, ctx),
            AbcastMsg::Consensus(inner) => {
                let events = {
                    let mut consensus_ctx =
                        MappedContext::new(ctx, AbcastMsg::Consensus, CONSENSUS_TIMER_BASE);
                    self.consensus.on_message(from, inner, &mut consensus_ctx)
                };
                // Decisions are not committed here: they park in the
                // reorder buffer and `try_advance` applies them strictly
                // in round order.
                self.buffer_decisions(events);
                self.try_advance(ctx);
            }
        }
    }

    /// `on_timer` body; runs under a batching scope.
    fn timer_step(&mut self, timer: TimerId, ctx: &mut dyn ActorContext<AbcastMsg>) {
        if timer == GOSSIP_TIMER {
            // Task gossip: repeat forever multisend gossip(k_p, Unordered_p).
            ctx.multisend(AbcastMsg::Gossip {
                round: self.kp,
                unordered: self.unordered.to_batch(),
            });
            ctx.set_timer(GOSSIP_TIMER, self.config.timers.gossip_period);
            return;
        }
        if timer == CHECKPOINT_TIMER {
            self.run_checkpoint_task(ctx);
            ctx.set_timer(CHECKPOINT_TIMER, self.config.timers.checkpoint_period);
            return;
        }
        if timer.raw() >= CONSENSUS_TIMER_BASE
            && timer.raw() < CONSENSUS_TIMER_BASE + CONSENSUS_TIMER_SPAN
        {
            let inner = TimerId::new(timer.raw() - CONSENSUS_TIMER_BASE);
            let (_, events) = {
                let mut consensus_ctx =
                    MappedContext::new(ctx, AbcastMsg::Consensus, CONSENSUS_TIMER_BASE);
                self.consensus.on_timer(inner, &mut consensus_ctx)
            };
            self.buffer_decisions(events);
            self.try_advance(ctx);
        }
    }
}

/// Every handler runs under [`run_step_checked`]: all stable-storage writes
/// of one event-handling step are committed with a single durability
/// barrier, and outgoing messages are released only after that commit —
/// one fsync per step instead of one per logged variable, with the
/// write-ahead ordering the protocol's recovery argument depends on.  A
/// failed commit suppresses the step's messages and fail-stops the process
/// (see [`AtomicBroadcast::is_halted`]); a halted process ignores every
/// subsequent event until it is crashed and recovered.
impl Actor for AtomicBroadcast {
    type Msg = AbcastMsg;

    fn on_start(&mut self, ctx: &mut dyn ActorContext<AbcastMsg>) {
        let ((), commit) = run_step_checked(ctx, |ctx| self.start_step(ctx));
        self.note_commit(commit);
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        msg: AbcastMsg,
        ctx: &mut dyn ActorContext<AbcastMsg>,
    ) {
        if self.halted {
            return;
        }
        let ((), commit) = run_step_checked(ctx, |ctx| self.message_step(from, msg, ctx));
        self.note_commit(commit);
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut dyn ActorContext<AbcastMsg>) {
        if self.halted {
            return;
        }
        let ((), commit) = run_step_checked(ctx, |ctx| self.timer_step(timer, ctx));
        self.note_commit(commit);
    }

    fn on_client_request(&mut self, payload: Bytes, ctx: &mut dyn ActorContext<AbcastMsg>) {
        if self.halted {
            return;
        }
        self.a_broadcast(payload, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_consensus::{ConsensusMsg, InstanceMsg};
    use abcast_net::testkit::ScriptedContext;
    use abcast_types::{BatchingPolicy, SimDuration};

    type Ctx = ScriptedContext<AbcastMsg>;

    fn ctx_for(me: u32, n: usize) -> Ctx {
        ScriptedContext::new(ProcessId::new(me), n)
    }

    fn basic_actor() -> AtomicBroadcast {
        AtomicBroadcast::basic()
    }

    /// Basic protocol with one message per round (`max_batch = 1`) and the
    /// given pipeline depth, so each broadcast opens its own instance.
    fn pipelined_actor(depth: u64) -> AtomicBroadcast {
        AtomicBroadcast::new(
            ProtocolConfig::basic()
                .with_batching(BatchingPolicy::EarlyReturn { max_batch: 1 })
                .with_pipeline_depth(depth),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        )
    }

    fn alternative_actor() -> AtomicBroadcast {
        AtomicBroadcast::new(
            ProtocolConfig::alternative().with_delta(3),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        )
    }

    fn decided(round: u64, batch: Batch) -> AbcastMsg {
        AbcastMsg::Consensus(ConsensusMsg::instance(
            Round::new(round),
            InstanceMsg::Decided { value: batch },
        ))
    }

    #[test]
    fn on_start_arms_the_gossip_task() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        assert!(
            ctx.timer_deadline(GOSSIP_TIMER).is_some(),
            "gossip task must be armed"
        );
        // The basic protocol has no checkpoint task.
        assert!(ctx.timer_deadline(CHECKPOINT_TIMER).is_none());
        assert_eq!(actor.round(), Round::ZERO);
    }

    #[test]
    fn alternative_protocol_arms_the_checkpoint_task_too() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor();
        actor.on_start(&mut ctx);
        assert!(ctx.timer_deadline(CHECKPOINT_TIMER).is_some());
    }

    #[test]
    fn gossip_timer_multisends_round_and_unordered_set() {
        let mut ctx = ctx_for(1, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        let id = actor.a_broadcast(b"hello".to_vec(), &mut ctx);
        ctx.clear_effects();
        actor.on_timer(GOSSIP_TIMER, &mut ctx);
        let gossip = ctx
            .multisent
            .iter()
            .find(|m| m.is_gossip())
            .expect("gossip must be multisent");
        match gossip {
            AbcastMsg::Gossip { round, unordered } => {
                assert_eq!(*round, Round::ZERO);
                assert_eq!(unordered.len(), 1);
                assert_eq!(unordered[0].id(), id);
            }
            _ => unreachable!(),
        }
        // The task re-arms itself ("repeat forever").
        assert!(ctx.timer_deadline(GOSSIP_TIMER).is_some());
    }

    #[test]
    fn a_broadcast_in_basic_mode_logs_nothing_at_the_broadcast_layer() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        let before = ctx.storage().metrics().snapshot();
        actor.a_broadcast(b"m".to_vec(), &mut ctx);
        let delta = ctx.storage().metrics().snapshot().since(&before);
        // One write for the broadcast-epoch slot (identity management),
        // one for the consensus proposal, and one for the coordinator's
        // self-promise at ballot issuance (the durable issued-ballot
        // watermark); nothing else.
        assert!(
            delta.write_ops() <= 3,
            "basic A-broadcast wrote {} times",
            delta.write_ops()
        );
        assert_eq!(actor.unordered_len(), 1);
        assert_eq!(actor.metrics().broadcasts, 1);
    }

    #[test]
    fn a_broadcast_in_alternative_mode_persists_the_unordered_set() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor();
        actor.on_start(&mut ctx);
        actor.a_broadcast(b"m".to_vec(), &mut ctx);
        let logged: Vec<Vec<AppMessage>> = ctx
            .storage()
            .load_log_values(&keys::unordered_incremental())
            .unwrap();
        assert_eq!(logged.len(), 1);
        assert_eq!(logged[0].len(), 1);
    }

    #[test]
    fn message_identities_are_unique_across_a_crash_without_unordered_logging() {
        // Basic protocol: identity safety comes from the persistent
        // broadcast epoch.
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        let first = actor.a_broadcast(b"1".to_vec(), &mut ctx);

        // Crash: fresh actor over the same storage.
        let mut recovered = basic_actor();
        let mut ctx2: Ctx = ScriptedContext::new(ProcessId::new(0), 3)
            .with_storage(ctx.storage_handle());
        recovered.on_start(&mut ctx2);
        let second = recovered.a_broadcast(b"2".to_vec(), &mut ctx2);
        assert_ne!(first, second, "identities must never repeat");
        assert!(second.seq > first.seq);
    }

    #[test]
    fn a_decision_for_the_current_round_commits_and_advances() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        let m = AppMessage::from_parts(ProcessId::new(2), 0, b"x".to_vec());
        actor.on_message(ProcessId::new(2), decided(0, vec![m.clone()]), &mut ctx);
        assert_eq!(actor.round(), Round::new(1));
        assert!(actor.is_delivered(m.id()));
        assert_eq!(actor.delivered_messages().len(), 1);
        let events = actor.take_deliveries();
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], DeliveryEvent::Deliver(d) if d.id() == m.id()));
        // Draining twice yields nothing new.
        assert!(actor.take_deliveries().is_empty());
    }

    #[test]
    fn out_of_order_decisions_are_committed_strictly_in_round_order() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        let m0 = AppMessage::from_parts(ProcessId::new(1), 0, b"a".to_vec());
        let m1 = AppMessage::from_parts(ProcessId::new(1), 1, b"b".to_vec());
        // Round 1 decides before round 0 is known locally.
        actor.on_message(ProcessId::new(1), decided(1, vec![m1.clone()]), &mut ctx);
        assert_eq!(actor.round(), Round::ZERO, "must wait for round 0");
        assert!(!actor.is_delivered(m1.id()));
        actor.on_message(ProcessId::new(1), decided(0, vec![m0.clone()]), &mut ctx);
        assert_eq!(actor.round(), Round::new(2));
        let order: Vec<MsgId> = actor.delivered_messages().iter().map(AppMessage::id).collect();
        assert_eq!(order, vec![m0.id(), m1.id()]);
    }

    #[test]
    fn pipelined_sequencer_opens_at_most_w_rounds_concurrently() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = pipelined_actor(3);
        actor.on_start(&mut ctx);
        for i in 0..5u8 {
            actor.a_broadcast(vec![i], &mut ctx);
        }
        // Five messages pending at one per round: exactly W = 3 instances
        // are open, the rest wait for the window to move.
        for k in 0..3u64 {
            assert!(actor.has_proposed(Round::new(k)), "round {k} must be open");
        }
        assert!(!actor.has_proposed(Round::new(3)), "window is bounded by W");
        assert_eq!(actor.rounds_in_flight(), 3);
        assert_eq!(actor.metrics().max_rounds_in_flight, 3);
        assert_eq!(actor.round(), Round::ZERO, "nothing committed yet");
    }

    #[test]
    fn depth_one_keeps_the_sequential_one_round_window() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = pipelined_actor(1);
        actor.on_start(&mut ctx);
        for i in 0..3u8 {
            actor.a_broadcast(vec![i], &mut ctx);
        }
        assert!(actor.has_proposed(Round::ZERO));
        assert!(!actor.has_proposed(Round::new(1)), "W = 1 never runs ahead");
        assert_eq!(actor.rounds_in_flight(), 1);
        assert_eq!(actor.metrics().max_rounds_in_flight, 1);
    }

    #[test]
    fn pipelined_decisions_commit_strictly_in_round_order() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = pipelined_actor(4);
        actor.on_start(&mut ctx);
        let m0 = AppMessage::from_parts(ProcessId::new(1), 0, b"a".to_vec());
        let m1 = AppMessage::from_parts(ProcessId::new(1), 1, b"b".to_vec());
        let m2 = AppMessage::from_parts(ProcessId::new(1), 2, b"c".to_vec());
        // Rounds 2 and 1 decide before round 0: both park in the reorder
        // buffer, nothing is applied.
        actor.on_message(ProcessId::new(1), decided(2, vec![m2.clone()]), &mut ctx);
        actor.on_message(ProcessId::new(1), decided(1, vec![m1.clone()]), &mut ctx);
        assert_eq!(actor.round(), Round::ZERO);
        assert!(actor.delivered_messages().is_empty());
        assert_eq!(actor.rounds_in_flight(), 2, "two decisions parked");
        // Round 0 decides: all three batches apply, strictly by round.
        actor.on_message(ProcessId::new(1), decided(0, vec![m0.clone()]), &mut ctx);
        assert_eq!(actor.round(), Round::new(3));
        let order: Vec<MsgId> = actor.delivered_messages().iter().map(AppMessage::id).collect();
        assert_eq!(order, vec![m0.id(), m1.id(), m2.id()]);
    }

    #[test]
    fn pipelined_rounds_do_not_propose_the_same_message_twice() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = pipelined_actor(3);
        actor.on_start(&mut ctx);
        let a = actor.a_broadcast(b"a".to_vec(), &mut ctx);
        let b = actor.a_broadcast(b"b".to_vec(), &mut ctx);
        // Rounds 0 and 1 are open, each carrying one distinct message: the
        // deeper round must exclude what round 0 already carries.
        assert!(actor.has_proposed(Round::ZERO) && actor.has_proposed(Round::new(1)));
        assert!(!actor.has_proposed(Round::new(2)), "nothing left to order");
        // Committing both rounds delivers each message exactly once
        // (Integrity), in round order.
        actor.on_message(
            ProcessId::new(1),
            decided(0, vec![AppMessage::new(a, Payload::from_static(b"a"))]),
            &mut ctx,
        );
        actor.on_message(
            ProcessId::new(1),
            decided(1, vec![AppMessage::new(b, Payload::from_static(b"b"))]),
            &mut ctx,
        );
        let order: Vec<MsgId> = actor.delivered_messages().iter().map(AppMessage::id).collect();
        assert_eq!(order, vec![a, b]);
        assert_eq!(actor.metrics().delivered_total, 2);
    }

    #[test]
    fn a_learned_decision_blocks_proposing_into_that_round() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = pipelined_actor(3);
        actor.on_start(&mut ctx);
        // Round 1 decides on a peer's batch before this process proposed
        // anything at all (it learned the decision through gossip while
        // round 0 is still open).
        let peer = AppMessage::from_parts(ProcessId::new(1), 0, b"peer".to_vec());
        actor.on_message(ProcessId::new(1), decided(1, vec![peer]), &mut ctx);
        // Local messages now open the window around the decided round,
        // which must not receive a (pointless, logged) proposal.
        actor.a_broadcast(b"a".to_vec(), &mut ctx);
        actor.a_broadcast(b"b".to_vec(), &mut ctx);
        assert!(actor.has_proposed(Round::ZERO));
        assert!(
            !actor.has_proposed(Round::new(1)),
            "a decided round must not be proposed into"
        );
        let stored: Option<Batch> = ctx
            .storage()
            .load_value(&keys::consensus_proposal(Round::new(1)))
            .unwrap();
        assert!(stored.is_none(), "no proposal record logged for the decided round");
        assert!(actor.has_proposed(Round::new(2)), "the window still fills past it");
    }

    #[test]
    fn state_transfer_abandons_jumped_in_flight_rounds() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = AtomicBroadcast::new(
            ProtocolConfig::alternative()
                .with_delta(3)
                .with_batching(BatchingPolicy::EarlyReturn { max_batch: 1 })
                .with_pipeline_depth(4),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        actor.on_start(&mut ctx);
        for i in 0..3u8 {
            actor.a_broadcast(vec![i], &mut ctx);
        }
        assert_eq!(actor.rounds_in_flight(), 3);
        // A peer far ahead ships its state: the transferred queue already
        // contains our messages (ordered by someone else), and the jump
        // passes our in-flight proposals.  Those instances can never
        // decide locally any more (peers forgot the rounds), so they must
        // be abandoned, not left querying forever.
        let mut remote = AgreedQueue::new();
        let msgs: Vec<AppMessage> = (0..3u64)
            .map(|i| AppMessage::from_parts(ProcessId::new(0), i, vec![i as u8]))
            .collect();
        remote.append_batch(&msgs);
        actor.on_message(
            ProcessId::new(1),
            AbcastMsg::State { round: Round::new(9), agreed: remote },
            &mut ctx,
        );
        assert_eq!(actor.round(), Round::new(10));
        assert_eq!(
            actor.rounds_in_flight(),
            0,
            "no zombie instances for the jumped-over rounds"
        );

        // Abandonment is in-memory and the jumped proposals' records are
        // still on storage (the next checkpoint would discard them): a
        // crash right here must not resurrect the zombies on recovery.
        let mut recovered = AtomicBroadcast::new(
            ProtocolConfig::alternative()
                .with_delta(3)
                .with_batching(BatchingPolicy::EarlyReturn { max_batch: 1 })
                .with_pipeline_depth(4),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        let mut ctx2: Ctx =
            ScriptedContext::new(ProcessId::new(0), 3).with_storage(ctx.storage_handle());
        recovered.on_start(&mut ctx2);
        assert_eq!(recovered.round(), Round::new(10));
        assert_eq!(
            recovered.rounds_in_flight(),
            0,
            "recovery must not rebuild the jumped-over undecided instances"
        );
    }

    #[test]
    fn recovery_reestablishes_the_forget_watermark() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3, retention = 7
        actor.on_start(&mut ctx);
        for k in 0..12u64 {
            let m = AppMessage::from_parts(ProcessId::new(1), k, vec![k as u8]);
            actor.on_message(ProcessId::new(1), decided(k, vec![m]), &mut ctx);
        }
        // Checkpoint: persists (12, Agreed) and forgets rounds below 5.
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx);

        // Crash and recover over the same storage.
        let mut recovered = alternative_actor();
        let mut ctx2: Ctx =
            ScriptedContext::new(ProcessId::new(0), 3).with_storage(ctx.storage_handle());
        recovered.on_start(&mut ctx2);
        assert_eq!(recovered.round(), Round::new(12));
        let before = recovered.consensus_instance_count();
        // Stale duplicate for a long-forgotten round, arriving before any
        // checkpoint tick has run on the recovered process: the watermark
        // must already be re-derived from the recovered round (it is
        // volatile, and pre-fix this window resurrected instances).
        let stale = AppMessage::from_parts(ProcessId::new(2), 7, b"stale".to_vec());
        recovered.on_message(ProcessId::new(1), decided(1, vec![stale.clone()]), &mut ctx2);
        assert_eq!(
            recovered.consensus_instance_count(),
            before,
            "stale traffic must not resurrect a forgotten instance after recovery"
        );
        assert!(!recovered.is_delivered(stale.id()));
    }

    /// Fuzz regression (sim_fuzz seed 88): the consensus-record GC used to
    /// take its cutoff from `kp` alone.  Recovery extends `kp` past the
    /// logged agreed image by replaying durable `decided` records — until
    /// the next agreed checkpoint those records ARE the durable copy of
    /// the delivery sequence, and the boot-step GC deleted the very
    /// records it had just replayed.  A second crash then rolled the
    /// recovered sequence back behind rounds the process had already
    /// settled, and re-proposing to such a round could split the cluster
    /// (two decisions for one instance).  The cutoff is now bounded by
    /// `persisted_round`: records survive until the `(k, Agreed)` image
    /// covering them is durable (Figure 4 line *c* after line *b*).
    #[test]
    fn gc_retains_decided_records_until_the_agreed_image_covers_them() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3, retention = 7
        actor.on_start(&mut ctx);
        // Deliver 20 rounds without ever running the checkpoint task: the
        // decided records are the only durable copy of the sequence.
        for k in 0..20u64 {
            let m = AppMessage::from_parts(ProcessId::new(1), k, vec![k as u8]);
            actor.on_message(ProcessId::new(1), decided(k, vec![m]), &mut ctx);
        }
        assert_eq!(actor.round(), Round::new(20));

        // First crash/recovery: the replay loop rebuilds kp = 20 from the
        // decided records, and the boot-step GC must keep all of them —
        // the agreed image on disk covers nothing yet.
        let mut recovered = alternative_actor();
        let mut ctx2: Ctx =
            ScriptedContext::new(ProcessId::new(0), 3).with_storage(ctx.storage_handle());
        recovered.on_start(&mut ctx2);
        assert_eq!(recovered.round(), Round::new(20));
        let stored = ctx2.storage().keys().unwrap();
        assert!(
            stored.contains(&keys::consensus_decided(Round::ZERO)),
            "boot-step GC discarded a decided record not yet covered by an agreed image"
        );

        // Second crash/recovery over the same storage: pre-fix, the first
        // boot's GC had deleted the records below `kp - retention` and the
        // recovered sequence regressed to the logged image (round 0 here).
        let mut recovered2 = alternative_actor();
        let mut ctx3: Ctx =
            ScriptedContext::new(ProcessId::new(0), 3).with_storage(ctx2.storage_handle());
        recovered2.on_start(&mut ctx3);
        assert_eq!(
            recovered2.round(),
            Round::new(20),
            "recovered round regressed: GC outran the agreed checkpoint"
        );

        // Once the checkpoint task persists the (20, Agreed) image the GC
        // may discard old records as usual — and recovery still lands on
        // round 20, now from the image instead of the replay.
        recovered2.on_timer(CHECKPOINT_TIMER, &mut ctx3);
        let stored = ctx3.storage().keys().unwrap();
        assert!(
            !stored.contains(&keys::consensus_decided(Round::ZERO)),
            "post-checkpoint GC should discard records the agreed image covers"
        );
        let mut recovered3 = alternative_actor();
        let mut ctx4: Ctx =
            ScriptedContext::new(ProcessId::new(0), 3).with_storage(ctx3.storage_handle());
        recovered3.on_start(&mut ctx4);
        assert_eq!(recovered3.round(), Round::new(20));
    }

    #[test]
    fn committing_multiple_pipelined_rounds_pays_one_barrier() {
        // With W > 1 a single incoming message can release several parked
        // rounds at once; the whole multi-round commit (consensus decision
        // record plus every per-commit log write) must still run under the
        // step's single durability barrier.
        let mut ctx = ctx_for(0, 3);
        let mut actor = AtomicBroadcast::new(
            ProtocolConfig::naive().with_pipeline_depth(4),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        actor.on_start(&mut ctx);
        let m0 = AppMessage::from_parts(ProcessId::new(1), 0, b"a".to_vec());
        let m1 = AppMessage::from_parts(ProcessId::new(1), 1, b"b".to_vec());
        let m2 = AppMessage::from_parts(ProcessId::new(1), 2, b"c".to_vec());
        actor.on_message(ProcessId::new(1), decided(1, vec![m1]), &mut ctx);
        actor.on_message(ProcessId::new(1), decided(2, vec![m2]), &mut ctx);
        assert_eq!(actor.round(), Round::ZERO);

        let before = ctx.storage().metrics().snapshot();
        actor.on_message(ProcessId::new(1), decided(0, vec![m0]), &mut ctx);
        let delta = ctx.storage().metrics().snapshot().since(&before);
        assert_eq!(actor.round(), Round::new(3), "three rounds committed");
        assert!(
            delta.write_ops() >= 3,
            "naive logging writes per committed round (wrote {} times)",
            delta.write_ops()
        );
        assert_eq!(
            delta.sync_ops, 1,
            "all concurrently-released rounds share the step's one barrier"
        );
    }

    #[test]
    fn recovery_replays_every_in_flight_pipelined_round() {
        let config = || {
            ProtocolConfig::basic()
                .with_batching(BatchingPolicy::EarlyReturn { max_batch: 1 })
                .with_pipeline_depth(4)
        };
        let mut ctx = ctx_for(0, 3);
        let mut actor = AtomicBroadcast::new(
            config(),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        actor.on_start(&mut ctx);
        for i in 0..3u8 {
            actor.a_broadcast(vec![i], &mut ctx);
        }
        let m1 = AppMessage::from_parts(ProcessId::new(1), 1, b"r1".to_vec());
        let m2 = AppMessage::from_parts(ProcessId::new(1), 2, b"r2".to_vec());
        // Rounds 1 and 2 decide (and are logged by the consensus layer);
        // round 0 is still open, so nothing has committed.
        actor.on_message(ProcessId::new(1), decided(1, vec![m1.clone()]), &mut ctx);
        actor.on_message(ProcessId::new(1), decided(2, vec![m2.clone()]), &mut ctx);
        assert_eq!(actor.round(), Round::ZERO);

        // Crash with three rounds in flight; recover over the same storage.
        let mut recovered = AtomicBroadcast::new(
            config(),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        let mut ctx2: Ctx =
            ScriptedContext::new(ProcessId::new(0), 3).with_storage(ctx.storage_handle());
        recovered.on_start(&mut ctx2);
        // Every in-flight round was rebuilt from its per-instance records —
        // not just the lowest one.
        for k in 0..3u64 {
            assert!(
                recovered.has_proposed(Round::new(k)),
                "in-flight round {k} must be replayed after recovery"
            );
        }
        // Once round 0 decides, the relearned decisions of rounds 1 and 2
        // apply right behind it, in round order.
        let m0 = AppMessage::from_parts(ProcessId::new(1), 0, b"r0".to_vec());
        recovered.on_message(ProcessId::new(1), decided(0, vec![m0.clone()]), &mut ctx2);
        assert_eq!(recovered.round(), Round::new(3));
        let order: Vec<MsgId> =
            recovered.delivered_messages().iter().map(AppMessage::id).collect();
        assert_eq!(order, vec![m0.id(), m1.id(), m2.id()]);

        // A never-crashed sequential (W = 1) process fed the same decisions
        // produces the identical delivery sequence.
        let mut seq_ctx = ctx_for(0, 3);
        let mut sequential = basic_actor();
        sequential.on_start(&mut seq_ctx);
        sequential.on_message(ProcessId::new(1), decided(1, vec![m1]), &mut seq_ctx);
        sequential.on_message(ProcessId::new(1), decided(2, vec![m2]), &mut seq_ctx);
        sequential.on_message(ProcessId::new(1), decided(0, vec![m0]), &mut seq_ctx);
        assert_eq!(sequential.delivered_messages(), recovered.delivered_messages());
    }

    #[test]
    fn gossip_from_an_ahead_peer_raises_gossip_k_and_triggers_an_empty_proposal() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        ctx.clear_effects();
        actor.on_message(
            ProcessId::new(2),
            AbcastMsg::Gossip {
                round: Round::new(5),
                unordered: vec![],
            },
            &mut ctx,
        );
        // The sequencer proposes (an empty batch) for its current round so
        // it can learn the outcomes it missed.
        let proposed_or_queried = ctx
            .multisent
            .iter()
            .any(|m| matches!(m, AbcastMsg::Consensus(_)));
        assert!(proposed_or_queried, "must start catching up");
    }

    #[test]
    fn gossip_carries_messages_into_the_unordered_set_idempotently() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        let m = AppMessage::from_parts(ProcessId::new(2), 0, b"g".to_vec());
        let gossip = AbcastMsg::Gossip {
            round: Round::ZERO,
            unordered: vec![m.clone()],
        };
        actor.on_message(ProcessId::new(2), gossip.clone(), &mut ctx);
        actor.on_message(ProcessId::new(2), gossip, &mut ctx);
        assert_eq!(actor.unordered_len(), 1, "duplicates are eliminated");
    }

    #[test]
    fn far_behind_peer_receives_a_state_message() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3
        actor.on_start(&mut ctx);
        // Locally complete 5 rounds.
        for k in 0..5u64 {
            let m = AppMessage::from_parts(ProcessId::new(1), k, vec![k as u8]);
            actor.on_message(ProcessId::new(1), decided(k, vec![m]), &mut ctx);
        }
        assert_eq!(actor.round(), Round::new(5));
        ctx.clear_effects();
        // A peer gossips that it is still at round 0: 5 > 0 + 3 → state.
        actor.on_message(
            ProcessId::new(2),
            AbcastMsg::Gossip {
                round: Round::ZERO,
                unordered: vec![],
            },
            &mut ctx,
        );
        let state = ctx
            .sent
            .iter()
            .find(|(to, m)| *to == ProcessId::new(2) && m.is_state_transfer());
        assert!(state.is_some(), "a state message must be sent to the laggard");
        assert_eq!(actor.metrics().state_transfers_sent, 1);
        // The watermark for round 0 is trivially known (empty queue), so
        // the reply is the O(gap) suffix, not the full snapshot.
        assert!(matches!(
            state,
            Some((_, AbcastMsg::StateSuffix { from_count: 0, messages, .. })) if messages.len() == 5
        ));
        assert_eq!(actor.metrics().suffix_transfers_sent, 1);
    }

    #[test]
    fn slightly_behind_peer_does_not_receive_a_state_message() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3
        actor.on_start(&mut ctx);
        for k in 0..2u64 {
            let m = AppMessage::from_parts(ProcessId::new(1), k, vec![k as u8]);
            actor.on_message(ProcessId::new(1), decided(k, vec![m]), &mut ctx);
        }
        ctx.clear_effects();
        actor.on_message(
            ProcessId::new(2),
            AbcastMsg::Gossip {
                round: Round::ZERO,
                unordered: vec![],
            },
            &mut ctx,
        );
        assert!(ctx.sent.iter().all(|(_, m)| !m.is_state_transfer()));
        assert_eq!(actor.metrics().state_transfers_sent, 0);
    }

    #[test]
    fn applying_a_state_message_skips_rounds_and_installs_the_checkpoint() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3
        actor.on_start(&mut ctx);
        actor.take_deliveries();

        // Build the remote Agreed queue: 4 delivered messages, compacted.
        let mut remote = AgreedQueue::new();
        let msgs: Vec<AppMessage> = (0..4u64)
            .map(|i| AppMessage::from_parts(ProcessId::new(1), i, vec![i as u8]))
            .collect();
        remote.append_batch(&msgs);
        remote.compact(abcast_types::Payload::from_static(b"remote-state"));

        actor.on_message(
            ProcessId::new(1),
            AbcastMsg::State {
                round: Round::new(9),
                agreed: remote,
            },
            &mut ctx,
        );
        assert_eq!(actor.round(), Round::new(10), "rounds 0..=9 are skipped");
        assert_eq!(actor.metrics().state_transfers_applied, 1);
        assert_eq!(actor.metrics().skipped_rounds, 10);
        for m in &msgs {
            assert!(actor.is_delivered(m.id()));
        }
        let events = actor.take_deliveries();
        assert!(matches!(events.first(), Some(DeliveryEvent::InstallCheckpoint(cp)) if cp.state.as_ref() == b"remote-state"));
    }

    #[test]
    fn applying_a_suffix_state_message_extends_the_prefix_in_order() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3
        actor.on_start(&mut ctx);
        actor.take_deliveries();

        // A suffix whose canonical delivery order differs from identity
        // order: re-sorting it would break Total Order.
        let suffix = vec![
            AppMessage::from_parts(ProcessId::new(2), 7, b"a".to_vec()),
            AppMessage::from_parts(ProcessId::new(1), 0, b"b".to_vec()),
        ];
        actor.on_message(
            ProcessId::new(1),
            AbcastMsg::StateSuffix {
                round: Round::new(9),
                from_count: 0,
                messages: suffix.clone(),
            },
            &mut ctx,
        );
        assert_eq!(actor.round(), Round::new(10));
        assert_eq!(actor.metrics().state_transfers_applied, 1);
        assert_eq!(actor.metrics().suffix_transfers_applied, 1);
        let order: Vec<MsgId> = actor.delivered_messages().iter().map(AppMessage::id).collect();
        assert_eq!(order, vec![suffix[0].id(), suffix[1].id()], "sender order kept");
    }

    #[test]
    fn a_suffix_for_a_different_prefix_is_not_applied() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3
        actor.on_start(&mut ctx);
        // Locally deliver one message: total_delivered = 1.
        let m = AppMessage::from_parts(ProcessId::new(1), 0, b"x".to_vec());
        actor.on_message(ProcessId::new(1), decided(0, vec![m]), &mut ctx);

        // A suffix computed for an empty prefix must be rejected...
        actor.on_message(
            ProcessId::new(1),
            AbcastMsg::StateSuffix {
                round: Round::new(9),
                from_count: 0,
                messages: vec![AppMessage::from_parts(ProcessId::new(2), 0, b"y".to_vec())],
            },
            &mut ctx,
        );
        assert_eq!(actor.metrics().state_transfers_applied, 0);
        assert_eq!(actor.round(), Round::new(1), "rounds are not skipped");
        // ...but the de-synchronisation is noted, so the sequencer keeps
        // catching up (and future gossip will fetch a matching transfer).
        assert_eq!(actor.delivered_messages().len(), 1);
    }

    #[test]
    fn suffix_reply_carries_only_the_missing_messages() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3
        actor.on_start(&mut ctx);
        for k in 0..6u64 {
            let m = AppMessage::from_parts(ProcessId::new(1), k, vec![k as u8]);
            actor.on_message(ProcessId::new(1), decided(k, vec![m]), &mut ctx);
        }
        ctx.clear_effects();
        // A peer stuck at round 2 has delivered exactly 2 messages.
        actor.on_message(
            ProcessId::new(2),
            AbcastMsg::Gossip {
                round: Round::new(2),
                unordered: vec![],
            },
            &mut ctx,
        );
        let reply = ctx
            .sent
            .iter()
            .find(|(to, m)| *to == ProcessId::new(2) && m.is_state_transfer())
            .map(|(_, m)| m.clone())
            .expect("laggard must get a state transfer");
        match reply {
            AbcastMsg::StateSuffix {
                round,
                from_count,
                messages,
            } => {
                assert_eq!(round, Round::new(5));
                assert_eq!(from_count, 2);
                assert_eq!(messages.len(), 4, "only rounds 2..=5 are shipped");
            }
            other => panic!("expected a suffix transfer, got {other:?}"),
        }
    }

    #[test]
    fn suffix_is_not_served_across_a_compaction_hole() {
        // A compaction that covers a gap-closing message delivered *after*
        // a still-explicit out-of-order one breaks the position↔suffix
        // mapping; the reply must fall back to the full snapshot, or the
        // laggard would silently lose the compacted message.
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor(); // delta = 3, app checkpoints on
        actor.on_start(&mut ctx);

        // Round 0 delivers (p2, seq 1) — out of order, not compactable.
        let out_of_order = AppMessage::from_parts(ProcessId::new(2), 1, b"x".to_vec());
        actor.on_message(ProcessId::new(1), decided(0, vec![out_of_order.clone()]), &mut ctx);
        // Round 1 delivers (p1, seq 0) — gap-free, compactable.
        let compactable = AppMessage::from_parts(ProcessId::new(1), 0, b"y".to_vec());
        actor.on_message(ProcessId::new(1), decided(1, vec![compactable.clone()]), &mut ctx);
        // The checkpoint task compacts the later-delivered message while
        // the earlier one stays explicit: a hole.
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx);
        assert!(actor.agreed().contains(compactable.id()));
        assert_eq!(actor.delivered_messages()[0].id(), out_of_order.id());

        // Race ahead so a peer at round 1 is more than Δ behind.
        for k in 2..7u64 {
            let m = AppMessage::from_parts(ProcessId::new(1), k - 1, vec![k as u8]);
            actor.on_message(ProcessId::new(1), decided(k, vec![m]), &mut ctx);
        }
        ctx.clear_effects();
        actor.on_message(
            ProcessId::new(2),
            AbcastMsg::Gossip {
                round: Round::new(1),
                unordered: vec![],
            },
            &mut ctx,
        );
        let reply = ctx
            .sent
            .iter()
            .find(|(to, m)| *to == ProcessId::new(2) && m.is_state_transfer())
            .map(|(_, m)| m.clone())
            .expect("laggard must get a state transfer");
        assert!(
            reply.is_state(),
            "a suffix across the compaction hole would drop {:?}; got {reply:?}",
            compactable.id()
        );
    }

    #[test]
    fn state_messages_are_ignored_by_the_basic_protocol() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        let mut remote = AgreedQueue::new();
        remote.append_batch(&[AppMessage::from_parts(ProcessId::new(1), 0, b"x".to_vec())]);
        actor.on_message(
            ProcessId::new(1),
            AbcastMsg::State {
                round: Round::new(9),
                agreed: remote,
            },
            &mut ctx,
        );
        assert_eq!(actor.round(), Round::ZERO);
        assert_eq!(actor.metrics().state_transfers_applied, 0);
    }

    /// Regression test: sampling checkpoint metrics before the first
    /// delivery used to be hazardous — the checkpoint task wrote a useless
    /// empty `(0, ∅)` snapshot, and byte-per-checkpoint summaries unwrapped
    /// the first/last sample of an empty series.  A checkpoint tick on a
    /// virgin process must be a no-op and the sampled series must stay
    /// empty-safe.
    #[test]
    fn checkpoint_task_before_any_delivery_is_a_no_op() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor();
        actor.on_start(&mut ctx);
        // Several checkpoint periods elapse before any message exists.
        for _ in 0..3 {
            actor.on_timer(CHECKPOINT_TIMER, &mut ctx);
        }
        assert_eq!(actor.metrics().agreed_checkpoints_logged, 0);
        assert_eq!(actor.metrics().agreed_snapshots_logged, 0);
        assert_eq!(actor.metrics().agreed_delta_records_logged, 0);
        let record: Option<(Round, AgreedQueue)> =
            ctx.storage().load_value(&keys::agreed_checkpoint()).unwrap();
        assert!(record.is_none(), "no empty checkpoint record is written");

        // The first *real* checkpoint after a delivery still snapshots.
        let m = AppMessage::from_parts(ProcessId::new(1), 0, b"x".to_vec());
        actor.on_message(ProcessId::new(1), decided(0, vec![m]), &mut ctx);
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx);
        assert_eq!(actor.metrics().agreed_snapshots_logged, 1);
    }

    #[test]
    fn checkpoint_task_persists_round_and_agreed_queue() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor();
        actor.on_start(&mut ctx);
        let m = AppMessage::from_parts(ProcessId::new(1), 0, b"x".to_vec());
        actor.on_message(ProcessId::new(1), decided(0, vec![m.clone()]), &mut ctx);
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx);

        let record: Option<(Round, AgreedQueue)> = ctx
            .storage()
            .load_value(&keys::agreed_checkpoint())
            .unwrap();
        let (round, agreed) = record.expect("checkpoint must be persisted");
        assert_eq!(round, Round::new(1));
        assert!(agreed.contains(m.id()));
        assert!(actor.metrics().agreed_checkpoints_logged >= 1);
        // The task re-arms itself.
        assert!(ctx.timer_deadline(CHECKPOINT_TIMER).is_some());
    }

    #[test]
    fn recovery_restores_round_agreed_and_application_state_from_the_checkpoint() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor();
        actor.on_start(&mut ctx);
        for k in 0..3u64 {
            let m = AppMessage::from_parts(ProcessId::new(1), k, vec![k as u8]);
            actor.on_message(ProcessId::new(1), decided(k, vec![m]), &mut ctx);
        }
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx);
        assert_eq!(actor.round(), Round::new(3));

        // Crash: a fresh actor over the same storage.
        let mut recovered = alternative_actor();
        let mut ctx2: Ctx = ScriptedContext::new(ProcessId::new(0), 3)
            .with_storage(ctx.storage_handle());
        recovered.on_start(&mut ctx2);
        assert_eq!(recovered.round(), Round::new(3), "round restored from checkpoint");
        assert_eq!(recovered.agreed().total_delivered(), 3);
        let events = recovered.take_deliveries();
        assert!(
            events.iter().any(|e| matches!(e, DeliveryEvent::InstallCheckpoint(_)))
                || events.iter().any(|e| matches!(e, DeliveryEvent::Deliver(_))),
            "the application is rebuilt from the recovered sequence"
        );
    }

    #[test]
    fn checkpoints_write_deltas_not_the_whole_history() {
        // Disable application checkpoints so the explicit queue keeps the
        // whole history — the worst case for the seed's clone-and-rewrite
        // checkpoint — and use a large snapshot interval so every periodic
        // checkpoint is a delta record.
        let mut ctx = ctx_for(0, 3);
        let mut actor = AtomicBroadcast::new(
            ProtocolConfig::alternative()
                .with_delta(3)
                .with_application_checkpoints(false)
                .with_checkpoint_snapshot_every(100),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        actor.on_start(&mut ctx);

        let mut next_round = 0u64;
        let mut deliver_burst = |actor: &mut AtomicBroadcast, ctx: &mut Ctx, count: u64| {
            for _ in 0..count {
                let m = AppMessage::from_parts(
                    ProcessId::new(1),
                    next_round,
                    vec![0u8; 32],
                );
                actor.on_message(ProcessId::new(1), decided(next_round, vec![m]), ctx);
                next_round += 1;
            }
        };

        // First checkpoint: the mandatory full snapshot.
        deliver_burst(&mut actor, &mut ctx, 5);
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx);
        assert_eq!(actor.metrics().agreed_snapshots_logged, 1);

        // Each further checkpoint covers 5 new messages while the history
        // keeps growing.  O(delta) means the bytes per checkpoint stay
        // flat; O(history) (the seed behaviour) would grow ~6x here.
        let mut checkpoint_bytes = Vec::new();
        for _ in 0..6 {
            deliver_burst(&mut actor, &mut ctx, 5);
            let before = ctx.storage().metrics().snapshot();
            actor.on_timer(CHECKPOINT_TIMER, &mut ctx);
            checkpoint_bytes.push(ctx.storage().metrics().snapshot().since(&before).bytes_written);
        }
        assert_eq!(actor.metrics().agreed_delta_records_logged, 6);
        // Guarded sampling: an empty series must fail the assertion, not
        // panic the harness (metrics can legitimately be sampled before
        // the first checkpoint).
        let (Some(&first), Some(&last)) = (checkpoint_bytes.first(), checkpoint_bytes.last())
        else {
            panic!("no checkpoint samples were collected");
        };
        let (first, last) = (first as f64, last as f64);
        assert!(
            last <= first * 1.5,
            "checkpoint bytes must be O(delta), not O(history): first {first}, last {last} \
             (all: {checkpoint_bytes:?})"
        );

        // And a delta checkpoint is far smaller than the full queue image.
        let full_size = actor.agreed().size_bytes() as f64;
        assert!(
            last < full_size / 3.0,
            "a delta record ({last} B) must be much smaller than the full queue ({full_size} B)"
        );
    }

    #[test]
    fn recovery_replays_snapshot_plus_delta_records_in_order() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = AtomicBroadcast::new(
            ProtocolConfig::alternative()
                .with_delta(3)
                .with_application_checkpoints(false)
                .with_checkpoint_snapshot_every(100),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        actor.on_start(&mut ctx);

        // Deliveries whose canonical order differs from identity order.
        let m0 = AppMessage::from_parts(ProcessId::new(2), 9, b"early".to_vec());
        let m1 = AppMessage::from_parts(ProcessId::new(1), 0, b"late".to_vec());
        actor.on_message(ProcessId::new(1), decided(0, vec![m0.clone()]), &mut ctx);
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx); // snapshot
        actor.on_message(ProcessId::new(1), decided(1, vec![m1.clone()]), &mut ctx);
        actor.on_timer(CHECKPOINT_TIMER, &mut ctx); // delta record
        assert_eq!(actor.metrics().agreed_snapshots_logged, 1);
        assert_eq!(actor.metrics().agreed_delta_records_logged, 1);

        // Crash and recover over the same storage.
        let mut recovered = AtomicBroadcast::new(
            ProtocolConfig::alternative()
                .with_delta(3)
                .with_application_checkpoints(false)
                .with_checkpoint_snapshot_every(100),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        let mut ctx2: Ctx =
            ScriptedContext::new(ProcessId::new(0), 3).with_storage(ctx.storage_handle());
        recovered.on_start(&mut ctx2);
        assert_eq!(recovered.round(), Round::new(2));
        let order: Vec<MsgId> =
            recovered.delivered_messages().iter().map(AppMessage::id).collect();
        assert_eq!(order, vec![m0.id(), m1.id()], "delta replay keeps delivery order");
    }

    #[test]
    fn an_alternative_broadcast_step_pays_one_durability_barrier() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = alternative_actor();
        actor.on_start(&mut ctx);
        let before = ctx.storage().metrics().snapshot();
        actor.a_broadcast(b"m".to_vec(), &mut ctx);
        let delta = ctx.storage().metrics().snapshot().since(&before);
        assert!(
            delta.write_ops() >= 2,
            "the step logs the Unordered set and the consensus proposal"
        );
        assert_eq!(
            delta.sync_ops, 1,
            "but the whole step commits under one durability barrier"
        );
    }

    #[test]
    fn naive_policy_logs_on_every_commit() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = AtomicBroadcast::new(
            ProtocolConfig::naive(),
            abcast_consensus::ConsensusConfig::crash_recovery(),
        );
        actor.on_start(&mut ctx);
        let before = ctx.storage().metrics().snapshot();
        let m = AppMessage::from_parts(ProcessId::new(1), 0, b"x".to_vec());
        actor.on_message(ProcessId::new(1), decided(0, vec![m]), &mut ctx);
        let delta = ctx.storage().metrics().snapshot().since(&before);
        assert!(
            delta.write_ops() >= 2,
            "naive policy must log agreed + unordered on commit"
        );
    }

    #[test]
    fn client_requests_are_a_broadcasts() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        actor.on_client_request(bytes::Bytes::from_static(b"payload"), &mut ctx);
        assert_eq!(actor.metrics().broadcasts, 1);
        assert_eq!(actor.unordered_len(), 1);
    }

    #[test]
    fn consensus_timers_are_routed_to_the_consensus_substrate() {
        let mut ctx = ctx_for(0, 3);
        let mut actor = basic_actor();
        actor.on_start(&mut ctx);
        // The consensus substrate armed its own timers through the mapped
        // context; firing the mapped FD tick must not panic and must re-arm.
        let fd_tick = TimerId::new(CONSENSUS_TIMER_BASE);
        let deadline_before = ctx.timer_deadline(fd_tick);
        assert!(deadline_before.is_some(), "FD tick armed under the consensus base");
        ctx.advance(SimDuration::from_millis(50));
        actor.on_timer(fd_tick, &mut ctx);
        assert!(ctx.timer_deadline(fd_tick).is_some(), "FD tick re-armed");
    }
}
