//! Checkers for the four properties that define Atomic Broadcast in the
//! crash-recovery model (Section 2.2).
//!
//! Tests and experiments collect the delivery sequences of all processes
//! (and the multiset of broadcast messages) after a run and feed them to
//! these functions:
//!
//! * **Validity** — no spurious messages: everything delivered was
//!   broadcast;
//! * **Integrity** — no message appears twice in any sequence;
//! * **Total Order** — the sequences are pairwise prefix-related;
//! * **Termination** — every message required to be delivered (broadcast by
//!   a good process, or delivered by anyone) is delivered by every good
//!   process.

use std::collections::BTreeSet;

use abcast_types::{AppMessage, MsgId};

use crate::queues::AgreedQueue;

/// A violation found by one of the property checkers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which property was violated.
    pub property: &'static str,
    /// Human-readable description.
    pub detail: String,
}

impl Violation {
    fn new(property: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            property,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated: {}", self.property, self.detail)
    }
}

/// Integrity: a message appears at most once in a delivery sequence.
pub fn check_integrity(sequence: &[AppMessage]) -> Result<(), Violation> {
    let mut seen = BTreeSet::new();
    for m in sequence {
        if !seen.insert(m.id()) {
            return Err(Violation::new(
                "Integrity",
                format!("message {} delivered more than once", m.id()),
            ));
        }
    }
    Ok(())
}

/// Validity: every delivered message was A-broadcast by some process.
pub fn check_validity(
    sequence: &[AppMessage],
    broadcast: &BTreeSet<MsgId>,
) -> Result<(), Violation> {
    for m in sequence {
        if !broadcast.contains(&m.id()) {
            return Err(Violation::new(
                "Validity",
                format!("message {} was delivered but never broadcast", m.id()),
            ));
        }
    }
    Ok(())
}

/// Total Order over explicit sequences: for every pair, one is a prefix of
/// the other.
pub fn check_total_order(sequences: &[Vec<AppMessage>]) -> Result<(), Violation> {
    for (i, a) in sequences.iter().enumerate() {
        for (j, b) in sequences.iter().enumerate().skip(i + 1) {
            let shorter = a.len().min(b.len());
            for position in 0..shorter {
                if a[position].id() != b[position].id() {
                    return Err(Violation::new(
                        "Total Order",
                        format!(
                            "sequences of process {i} and process {j} diverge at position \
                             {position}: {} vs {}",
                            a[position].id(),
                            b[position].id()
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Total Order in the presence of application checkpoints: delivery
/// sequences may start with a checkpoint instead of explicit messages, so
/// the prefix relation is checked on *identities in delivery order*, where
/// a process whose sequence was compacted (or adopted through a state
/// transfer) is allowed to be missing an arbitrary prefix, but never to
/// reorder, interleave or skip a message another process delivered inside
/// the same span.
pub fn check_total_order_compacted(queues: &[&AgreedQueue]) -> Result<(), Violation> {
    // Build, for every process, the ordered list of explicit identities.
    // Each is a contiguous *window* of the one true delivery order: the
    // prefix may have been compacted into a checkpoint (or adopted through
    // a state transfer), the tail may simply not have been delivered yet.
    let explicit: Vec<Vec<MsgId>> = queues
        .iter()
        .map(|q| q.messages().iter().map(AppMessage::id).collect())
        .collect();
    // Two windows of the same total order must agree exactly on their
    // overlap: restricted to the identities both contain, the enclosing
    // slices (first common to last common, *everything in between
    // included*) must be identical — same elements, same order, no gaps.
    // Disjoint windows carry no ordering evidence and are skipped.
    for (i, a) in explicit.iter().enumerate() {
        for (j, b) in explicit.iter().enumerate().skip(i + 1) {
            let in_b: BTreeSet<&MsgId> = b.iter().collect();
            let common: Vec<usize> = (0..a.len()).filter(|k| in_b.contains(&a[*k])).collect();
            let (Some(&a_first), Some(&a_last)) = (common.first(), common.last()) else {
                continue;
            };
            let in_common: BTreeSet<&MsgId> = common.iter().map(|k| &a[*k]).collect();
            let b_first = b.iter().position(|id| in_common.contains(id)).expect("nonempty");
            let b_last = b.iter().rposition(|id| in_common.contains(id)).expect("nonempty");
            let slice_a = &a[a_first..=a_last];
            let slice_b = &b[b_first..=b_last];
            if slice_a != slice_b {
                let offset = slice_a
                    .iter()
                    .zip(slice_b.iter())
                    .position(|(x, y)| x != y)
                    .unwrap_or(slice_a.len().min(slice_b.len()));
                return Err(Violation::new(
                    "Total Order",
                    format!(
                        "processes {i} and {j} disagree on their overlapping deliveries at \
                         overlap offset {offset}: {:?} vs {:?}",
                        slice_a.get(offset),
                        slice_b.get(offset)
                    ),
                ));
            }
        }
    }
    Ok(())
}

/// Termination: every identity in `must_deliver` appears in the delivery
/// sequence of every good process.
pub fn check_termination(
    good_sequences: &[(usize, &AgreedQueue)],
    must_deliver: &BTreeSet<MsgId>,
) -> Result<(), Violation> {
    for (process, queue) in good_sequences {
        for id in must_deliver {
            if !queue.contains(*id) {
                return Err(Violation::new(
                    "Termination",
                    format!("good process {process} never delivered {id}"),
                ));
            }
        }
    }
    Ok(())
}

/// Runs every checker over a full run outcome and returns all violations.
pub fn check_all(
    queues: &[&AgreedQueue],
    good: &[usize],
    broadcast: &BTreeSet<MsgId>,
    must_deliver: &BTreeSet<MsgId>,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for q in queues {
        if let Err(v) = check_integrity(q.messages()) {
            violations.push(v);
        }
        if let Err(v) = check_validity(q.messages(), broadcast) {
            violations.push(v);
        }
    }
    if let Err(v) = check_total_order_compacted(queues) {
        violations.push(v);
    }
    let good_queues: Vec<(usize, &AgreedQueue)> = good
        .iter()
        .filter_map(|i| queues.get(*i).map(|q| (*i, *q)))
        .collect();
    if let Err(v) = check_termination(&good_queues, must_deliver) {
        violations.push(v);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_types::{Payload, ProcessId};

    fn msg(sender: u32, seq: u64) -> AppMessage {
        AppMessage::from_parts(ProcessId::new(sender), seq, vec![])
    }

    fn ids(messages: &[AppMessage]) -> BTreeSet<MsgId> {
        messages.iter().map(AppMessage::id).collect()
    }

    #[test]
    fn integrity_detects_duplicates() {
        assert!(check_integrity(&[msg(0, 0), msg(1, 0)]).is_ok());
        let err = check_integrity(&[msg(0, 0), msg(0, 0)]).unwrap_err();
        assert_eq!(err.property, "Integrity");
        assert!(err.to_string().contains("p0#0"));
    }

    #[test]
    fn validity_detects_spurious_messages() {
        let broadcast = ids(&[msg(0, 0)]);
        assert!(check_validity(&[msg(0, 0)], &broadcast).is_ok());
        let err = check_validity(&[msg(9, 9)], &broadcast).unwrap_err();
        assert_eq!(err.property, "Validity");
    }

    #[test]
    fn total_order_accepts_prefixes_and_rejects_divergence() {
        let a = vec![msg(0, 0), msg(1, 0), msg(1, 1)];
        let b = vec![msg(0, 0), msg(1, 0)];
        let c: Vec<AppMessage> = vec![];
        assert!(check_total_order(&[a.clone(), b.clone(), c]).is_ok());

        let diverging = vec![msg(0, 0), msg(1, 1)];
        let err = check_total_order(&[a, diverging]).unwrap_err();
        assert_eq!(err.property, "Total Order");
        assert!(err.detail.contains("position 1"));
    }

    #[test]
    fn compacted_total_order_allows_missing_prefixes_only() {
        let mut full = AgreedQueue::new();
        full.append_batch(&[msg(0, 0), msg(0, 1), msg(1, 0), msg(1, 1)]);

        let mut compacted = AgreedQueue::new();
        compacted.append_batch(&[msg(0, 0), msg(0, 1), msg(1, 0), msg(1, 1)]);
        compacted.compact(Payload::new());
        compacted.append_batch(&[]);

        let mut suffix_only = AgreedQueue::new();
        suffix_only.append_batch(&[msg(0, 0), msg(0, 1)]);
        suffix_only.compact(Payload::new());
        // After compaction it delivers the rest explicitly.
        suffix_only.append_batch(&[msg(1, 0), msg(1, 1)]);

        assert!(check_total_order_compacted(&[&full, &compacted, &suffix_only]).is_ok());

        let mut reordered = AgreedQueue::new();
        reordered.append_batch(&[msg(1, 1)]);
        reordered.append_batch(&[msg(1, 0)]);
        let err = check_total_order_compacted(&[&full, &reordered]).unwrap_err();
        assert_eq!(err.property, "Total Order");
    }

    #[test]
    fn lagging_window_behind_a_compacted_reference_is_not_a_violation() {
        // Found by sim_fuzz seed 144: the process with the *longest*
        // explicit sequence had compacted p0#0 into its checkpoint, while
        // a lagging recovering process held only p0#0 explicitly.  The two
        // windows overlap on nothing contradictory, so this must pass.
        let mut compacted_leader = AgreedQueue::new();
        compacted_leader.append_batch(&[msg(0, 0)]);
        compacted_leader.compact(Payload::new());
        compacted_leader.append_batch(&[msg(0, 1), msg(0, 2), msg(1, 0), msg(1, 1)]);

        let mut lagging = AgreedQueue::new();
        lagging.append_batch(&[msg(0, 0)]);
        assert!(check_total_order_compacted(&[&compacted_leader, &lagging]).is_ok());

        // But a gap *inside* the shared span is still caught: a window
        // that skips p0#2 between p0#1 and p1#0 disagrees with the leader.
        let mut gapped = AgreedQueue::new();
        gapped.append_batch(&[msg(0, 1)]);
        gapped.append_batch(&[msg(1, 0)]);
        let err = check_total_order_compacted(&[&compacted_leader, &gapped]).unwrap_err();
        assert_eq!(err.property, "Total Order");
    }

    #[test]
    fn termination_requires_good_processes_to_deliver_everything() {
        let mut q0 = AgreedQueue::new();
        q0.append_batch(&[msg(0, 0), msg(1, 0)]);
        let mut q1 = AgreedQueue::new();
        q1.append_batch(&[msg(0, 0)]);

        let must = ids(&[msg(0, 0), msg(1, 0)]);
        assert!(check_termination(&[(0, &q0)], &must).is_ok());
        let err = check_termination(&[(0, &q0), (1, &q1)], &must).unwrap_err();
        assert_eq!(err.property, "Termination");
        assert!(err.detail.contains("process 1"));
    }

    #[test]
    fn check_all_aggregates_violations() {
        let mut good_queue = AgreedQueue::new();
        good_queue.append_batch(&[msg(0, 0)]);
        let broadcast = ids(&[msg(0, 0)]);
        let must = ids(&[msg(0, 0)]);
        let violations = check_all(&[&good_queue], &[0], &broadcast, &must);
        assert!(violations.is_empty(), "{violations:?}");

        // A spurious, duplicated message triggers several violations.
        let mut bad_queue = AgreedQueue::new();
        bad_queue.append_batch(&[msg(7, 7)]);
        let violations = check_all(&[&bad_queue], &[0], &broadcast, &must);
        assert!(violations.iter().any(|v| v.property == "Validity"));
        assert!(violations.iter().any(|v| v.property == "Termination"));
    }
}
