//! Socket-backed harness: whole atomic broadcast deployments over real TCP.
//!
//! [`crate::harness::Cluster`] runs the framed protocol under the
//! deterministic simulator; [`TcpCluster`] deploys the *identical actors*
//! (built by the same [`ClusterConfig::framed_factory`]) on
//! [`abcast_net::tcp::TcpRuntime`]: one worker thread per process, real
//! `std::net` TCP connections over loopback between them, length-prefixed
//! frames reassembled zero-copy at the receiver.  The harness mirrors
//! `Cluster`'s surface — broadcast, run-until-delivered, delivery/agreed
//! inspection, checkpoint ticks — so scenario tests and experiments can be
//! re-run over real sockets, and equivalence tests can require the two
//! transports to produce bit-for-bit identical histories.
//!
//! Differences forced by reality:
//!
//! * time is wall-clock, so "run for" becomes "wait until … or timeout";
//! * the [`abcast_net::LinkConfig`] of the configuration is *not* applied —
//!   loss, duplication and delay now come from the actual network stack
//!   (plus [`TcpCluster::sever_link`]-style fault injection);
//! * inspection returns clones, not references, because the actors live on
//!   their worker threads.

use std::collections::BTreeSet;
use std::io;
use std::time::{Duration, Instant}; // xlint:allow(D1) — harness side of the socket deployment: wall-clock deadlines for real threads, not protocol time

use abcast_net::tcp::{TcpConfig, TcpRuntime};
use abcast_storage::{SharedStorage, StorageRegistry};
use abcast_types::{AppMessage, MsgId, ProcessId, ProcessSet};

use crate::harness::{ClusterConfig, FramedAbcast};
use crate::protocol::ProtocolMetrics;
use crate::queues::AgreedQueue;

/// A live deployment of [`crate::protocol::AtomicBroadcast`] processes
/// speaking byte frames over real TCP sockets on loopback.
pub struct TcpCluster {
    runtime: TcpRuntime<FramedAbcast>,
    broadcast_ids: BTreeSet<MsgId>,
}

impl TcpCluster {
    /// Builds and starts the cluster over fresh in-memory stable storage.
    pub fn new(config: ClusterConfig) -> io::Result<Self> {
        let storage = StorageRegistry::in_memory(config.processes);
        TcpCluster::with_registry(config, storage)
    }

    /// Builds and starts the cluster over an existing storage registry
    /// (file- or WAL-backed storages, or storages carried over from a
    /// previous deployment).
    pub fn with_registry(config: ClusterConfig, storage: StorageRegistry) -> io::Result<Self> {
        let tcp = TcpConfig::default().with_seed(config.seed);
        TcpCluster::with_registry_and_tcp(config, storage, tcp)
    }

    /// Builds and starts the cluster with explicit socket-transport
    /// settings (reconnect backoff, frame bound, nodelay).
    pub fn with_registry_and_tcp(
        config: ClusterConfig,
        storage: StorageRegistry,
        tcp: TcpConfig,
    ) -> io::Result<Self> {
        let factory = config.framed_factory();
        let runtime = TcpRuntime::start(config.processes, storage, tcp, factory)?;
        Ok(TcpCluster {
            runtime,
            broadcast_ids: BTreeSet::new(),
        })
    }

    /// The underlying socket runtime (fault injection, socket metrics,
    /// crash/recover controls).
    pub fn runtime(&self) -> &TcpRuntime<FramedAbcast> {
        &self.runtime
    }

    /// The set of processes.
    pub fn processes(&self) -> ProcessSet {
        self.runtime.processes().clone()
    }

    /// The storage registry backing this deployment.
    pub fn storage(&self) -> &StorageRegistry {
        self.runtime.storage()
    }

    /// Stable storage of one process.
    pub fn storage_for(&self, p: ProcessId) -> SharedStorage {
        self.runtime
            .storage()
            .storage_for(p)
            .expect("registry covers every process")
    }

    /// A-broadcasts `payload` at process `p`.  Returns the assigned
    /// identity, or `None` if `p` is currently down.
    ///
    /// The invocation runs on `p`'s worker thread with a live context, so
    /// the gossip/proposal traffic it triggers leaves over the sockets
    /// before this method returns the identity.
    pub fn broadcast(&mut self, p: ProcessId, payload: impl Into<Vec<u8>>) -> Option<MsgId> {
        let payload = payload.into();
        let id = self.runtime.invoke(p, move |actor, ctx| {
            actor.with_inner_ctx(ctx, |inner, ctx| inner.a_broadcast(payload, ctx))
        })?;
        self.broadcast_ids.insert(id);
        Some(id)
    }

    /// Fires the checkpoint task of process `p` right now, exactly as if
    /// its [`crate::protocol::CHECKPOINT_TIMER`] had expired — the
    /// socket-side twin of [`crate::harness::Cluster::checkpoint_tick`].
    /// Returns `false` while `p` is down.
    pub fn checkpoint_tick(&self, p: ProcessId) -> bool {
        self.runtime
            .invoke(p, |actor, ctx| {
                use abcast_net::Actor as _;
                actor.on_timer(crate::protocol::CHECKPOINT_TIMER, ctx);
            })
            .is_some()
    }

    /// Blocks until every process in `who` is up and has delivered every
    /// identity in `ids`, or until `timeout` elapses.  Returns `true` on
    /// success.
    ///
    /// Parks on the runtime's [`abcast_net::Activity`] signal between
    /// probes instead of sleep-polling: a process is re-inspected only
    /// after some worker made protocol progress, so the wait costs no CPU
    /// while the cluster is quiescent and reacts immediately when a
    /// delivery lands.
    pub fn run_until_delivered(
        &self,
        who: &[ProcessId],
        ids: &[MsgId],
        timeout: Duration,
    ) -> bool {
        let deadline = Instant::now() + timeout; // xlint:allow(D1) — wall-clock deadline against real worker threads
        let activity = self.runtime.activity();
        'processes: for &p in who {
            loop {
                // Epoch before the probe: progress landing between the
                // inspect and the wait wakes the wait immediately.
                let seen = activity.epoch();
                let ids = ids.to_vec(); // xlint:allow(Z1) — a handful of Copy ids moved into the inspect closure, not payload bytes
                let done = self
                    .runtime
                    .inspect(p, move |a| ids.iter().all(|id| a.is_delivered(*id)))
                    .unwrap_or(false);
                if done {
                    continue 'processes;
                }
                let left = deadline.saturating_duration_since(Instant::now()); // xlint:allow(D1) — wall-clock deadline against real worker threads
                if left.is_zero() {
                    return false;
                }
                // Capped wait as a liveness backstop (a down process makes
                // no progress but can still be recovered externally).
                activity.wait_past(seen, left.min(Duration::from_millis(50)));
            }
        }
        true
    }

    /// Blocks until every process has delivered all identities ever
    /// broadcast through this harness, or until `timeout` elapses.
    pub fn run_until_all_delivered(&self, timeout: Duration) -> bool {
        let everyone: Vec<ProcessId> = self.runtime.processes().iter().collect();
        let ids: Vec<MsgId> = self.broadcast_ids.iter().copied().collect();
        self.run_until_delivered(&everyone, &ids, timeout)
    }

    /// Identities ever broadcast through this harness.
    pub fn broadcast_ids(&self) -> &BTreeSet<MsgId> {
        &self.broadcast_ids
    }

    /// A clone of the delivery sequence state of `p` (`None` while down).
    pub fn agreed(&self, p: ProcessId) -> Option<AgreedQueue> {
        self.runtime.inspect(p, |a| a.inner().agreed().clone())
    }

    /// The explicitly delivered messages of `p` (empty while down).
    pub fn delivered(&self, p: ProcessId) -> Vec<AppMessage> {
        self.runtime
            .inspect(p, |a| a.delivered_messages().to_vec()) // xlint:allow(Z1) — inspection hands out owned copies; payload Bytes inside stay refcounted
            .unwrap_or_default()
    }

    /// A clone of the protocol metrics of `p` (`None` while down).
    pub fn protocol_metrics(&self, p: ProcessId) -> Option<ProtocolMetrics> {
        self.runtime.inspect(p, |a| a.metrics().clone())
    }

    /// Every identity `p` has A-delivered, in delivery order — the full
    /// history, regardless of later app-checkpoint compaction (`None`
    /// while down).
    pub fn delivery_log_ids(&self, p: ProcessId) -> Option<Vec<MsgId>> {
        self.runtime
            .inspect(p, |a| a.delivery_log().iter().map(|(_, id)| *id).collect())
    }

    /// Total wire frames received that failed to decode, across all
    /// currently-up processes.  Zero in any healthy run.
    pub fn decode_failures(&self) -> u64 {
        self.runtime
            .processes()
            .iter()
            .filter_map(|p| self.runtime.inspect(p, FramedAbcast::decode_failures))
            .sum()
    }

    /// Hard-kills every live connection between `a` and `b` (fault
    /// injection); the dialers reconnect with exponential backoff.
    pub fn sever_link(&self, a: ProcessId, b: ProcessId) -> usize {
        self.runtime.sever_link(a, b)
    }

    /// Hard-kills every live connection touching `p`.
    pub fn sever_process(&self, p: ProcessId) -> usize {
        self.runtime.sever_process(p)
    }

    /// Crashes process `p` (volatile state lost; connections stay up).
    pub fn crash(&self, p: ProcessId) {
        self.runtime.crash(p);
    }

    /// Recovers process `p` from its stable storage.
    pub fn recover(&self, p: ProcessId) {
        self.runtime.recover(p);
    }

    /// Shuts the deployment down and joins every thread.
    pub fn shutdown(self) {
        self.runtime.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_types::SimDuration;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    /// Keep the free-running timers out of the way for determinism-minded
    /// tests: checkpoints only happen through explicit ticks.
    fn quiet_checkpoints(config: ClusterConfig) -> ClusterConfig {
        let protocol = config.protocol.clone().with_checkpoint_period(SimDuration::from_secs(3600));
        config.with_protocol(protocol)
    }

    #[test]
    fn three_process_socket_cluster_delivers_a_message_everywhere() {
        let mut cluster =
            TcpCluster::new(ClusterConfig::basic(3).with_seed(11)).expect("loopback cluster");
        let id = cluster.broadcast(p(0), b"over real sockets".to_vec()).unwrap();
        assert!(
            cluster.run_until_all_delivered(Duration::from_secs(30)),
            "message {id} was not delivered everywhere in time"
        );
        for q in [p(0), p(1), p(2)] {
            let delivered = cluster.delivered(q);
            assert_eq!(delivered.len(), 1, "{q} delivered {delivered:?}");
            assert_eq!(delivered[0].id(), id);
            assert_eq!(delivered[0].payload().as_ref(), b"over real sockets");
        }
        assert_eq!(cluster.decode_failures(), 0);
        let tcp = cluster.runtime().tcp_metrics().snapshot();
        assert!(tcp.frames_received > 0, "traffic went over the sockets: {tcp:?}");
        cluster.shutdown();
    }

    #[test]
    fn socket_cluster_orders_concurrent_broadcasts_identically() {
        let mut cluster = TcpCluster::new(quiet_checkpoints(
            ClusterConfig::alternative(3).with_seed(12),
        ))
        .expect("loopback cluster");
        let mut ids = Vec::new();
        for i in 0..9u8 {
            ids.extend(cluster.broadcast(p(u32::from(i) % 3), vec![i; 8]));
        }
        assert_eq!(ids.len(), 9);
        assert!(cluster.run_until_all_delivered(Duration::from_secs(60)));
        let reference: Vec<MsgId> =
            cluster.delivered(p(0)).iter().map(AppMessage::id).collect();
        assert_eq!(reference.len(), 9);
        for q in [p(1), p(2)] {
            let order: Vec<MsgId> = cluster.delivered(q).iter().map(AppMessage::id).collect();
            assert_eq!(order, reference, "sequences differ at {q}");
        }
        assert_eq!(cluster.decode_failures(), 0);
        cluster.shutdown();
    }
}
