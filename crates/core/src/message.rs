//! Wire messages of the atomic broadcast protocol.
//!
//! Three kinds of traffic share the process-to-process channel:
//!
//! * `gossip(k, Unordered)` — the periodic dissemination of the round
//!   counter and the unordered set (Figure 2, gossip task);
//! * `state(k, Agreed)` — the state-transfer message of the alternative
//!   protocol (Figure 3, lines *d*–*f*);
//! * the consensus substrate's own messages, wrapped verbatim.

use abcast_consensus::ConsensusMsg;
use abcast_types::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use abcast_types::{AppMessage, Round};

use crate::queues::{AgreedQueue, Batch};

/// Top-level message type exchanged by atomic broadcast processes.
#[derive(Clone, Debug, PartialEq)]
pub enum AbcastMsg {
    /// `gossip(k_p, Unordered_p)`: the sender's current round and unordered
    /// messages.
    Gossip {
        /// The sender's current round `k_p`.
        round: Round,
        /// The sender's `Unordered_p` set.
        unordered: Vec<AppMessage>,
    },
    /// `state(k, Agreed)`: a snapshot of the sender's delivery sequence,
    /// sent to a process that lagged behind by more than Δ rounds.
    State {
        /// The last round reflected in the snapshot (`k_p − 1` at the
        /// sender).
        round: Round,
        /// The sender's delivery sequence (checkpoint plus explicit
        /// messages).
        agreed: AgreedQueue,
    },
    /// `state-suffix(k, from, messages)`: the portion of the sender's
    /// delivery sequence the lagging receiver is missing, instead of the
    /// whole queue.  Sent when the sender still remembers how many
    /// messages a process at the receiver's round has delivered (the
    /// suffix is then O(gap)); the full [`AbcastMsg::State`] snapshot is
    /// the fallback once that history was compacted away.
    StateSuffix {
        /// The last round reflected in the suffix (`k_p − 1` at the
        /// sender).
        round: Round,
        /// Number of messages the receiver must already have delivered for
        /// the suffix to apply (its delivery count at its gossiped round).
        from_count: u64,
        /// The missing messages, in canonical delivery order.
        messages: Vec<AppMessage>,
    },
    /// A message of the consensus substrate (failure detector heartbeats or
    /// instance messages).
    Consensus(ConsensusMsg<Batch>),
}

impl AbcastMsg {
    /// Short label used in traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            AbcastMsg::Gossip { .. } => "gossip",
            AbcastMsg::State { .. } => "state",
            AbcastMsg::StateSuffix { .. } => "state-suffix",
            AbcastMsg::Consensus(inner) => inner.kind(),
        }
    }

    /// `true` for gossip messages.
    pub fn is_gossip(&self) -> bool {
        matches!(self, AbcastMsg::Gossip { .. })
    }

    /// `true` for full-snapshot state-transfer messages.
    pub fn is_state(&self) -> bool {
        matches!(self, AbcastMsg::State { .. })
    }

    /// `true` for suffix state-transfer messages.
    pub fn is_state_suffix(&self) -> bool {
        matches!(self, AbcastMsg::StateSuffix { .. })
    }

    /// `true` for any state-transfer message (full snapshot or suffix).
    pub fn is_state_transfer(&self) -> bool {
        self.is_state() || self.is_state_suffix()
    }
}

// Wire-frame tags of [`AbcastMsg`].
const TAG_GOSSIP: u8 = 0;
const TAG_STATE: u8 = 1;
const TAG_STATE_SUFFIX: u8 = 2;
const TAG_CONSENSUS: u8 = 3;

impl Encode for AbcastMsg {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            AbcastMsg::Gossip { round, unordered } => {
                enc.put_u8(TAG_GOSSIP);
                round.encode(enc);
                unordered.encode(enc);
            }
            AbcastMsg::State { round, agreed } => {
                enc.put_u8(TAG_STATE);
                round.encode(enc);
                agreed.encode(enc);
            }
            AbcastMsg::StateSuffix {
                round,
                from_count,
                messages,
            } => {
                enc.put_u8(TAG_STATE_SUFFIX);
                round.encode(enc);
                enc.put_u64(*from_count);
                messages.encode(enc);
            }
            AbcastMsg::Consensus(inner) => {
                enc.put_u8(TAG_CONSENSUS);
                inner.encode(enc);
            }
        }
    }
}

impl Decode for AbcastMsg {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(match dec.take_u8()? {
            TAG_GOSSIP => AbcastMsg::Gossip {
                round: Round::decode(dec)?,
                unordered: Vec::<AppMessage>::decode(dec)?,
            },
            TAG_STATE => AbcastMsg::State {
                round: Round::decode(dec)?,
                agreed: AgreedQueue::decode(dec)?,
            },
            TAG_STATE_SUFFIX => AbcastMsg::StateSuffix {
                round: Round::decode(dec)?,
                from_count: dec.take_u64()?,
                messages: Vec::<AppMessage>::decode(dec)?,
            },
            TAG_CONSENSUS => AbcastMsg::Consensus(ConsensusMsg::decode(dec)?),
            other => {
                return Err(DecodeError::invalid(format!(
                    "unknown AbcastMsg tag {other}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_consensus::InstanceMsg;
    use abcast_types::ProcessId;

    #[test]
    fn wire_messages_round_trip_through_the_codec() {
        use abcast_types::codec::{from_payload, to_payload};
        let msg = |p: u32, s: u64| AppMessage::from_parts(ProcessId::new(p), s, vec![s as u8; 8]);
        let mut agreed = AgreedQueue::new();
        agreed.append_batch(&[msg(0, 0), msg(1, 0)]);
        let samples = vec![
            AbcastMsg::Gossip {
                round: Round::new(3),
                unordered: vec![msg(0, 1), msg(2, 5)],
            },
            AbcastMsg::State {
                round: Round::new(5),
                agreed,
            },
            AbcastMsg::StateSuffix {
                round: Round::new(7),
                from_count: 2,
                messages: vec![msg(1, 1)],
            },
            AbcastMsg::Consensus(ConsensusMsg::instance(
                Round::new(1),
                InstanceMsg::Decided {
                    value: vec![msg(0, 2)],
                },
            )),
        ];
        for sample in samples {
            let frame = to_payload(&sample);
            let back: AbcastMsg = from_payload(&frame).unwrap();
            assert_eq!(back, sample);
        }
    }

    #[test]
    fn decoded_gossip_payloads_are_views_of_the_frame() {
        use abcast_types::codec::{from_payload, to_payload};
        let m = AppMessage::from_parts(ProcessId::new(0), 9, vec![0xAB; 32]);
        let frame = to_payload(&AbcastMsg::Gossip {
            round: Round::new(1),
            unordered: vec![m.clone()],
        });
        let back: AbcastMsg = from_payload(&frame).unwrap();
        let AbcastMsg::Gossip { unordered, .. } = back else {
            unreachable!()
        };
        assert_eq!(unordered[0], m);
        assert!(
            unordered[0].payload().shares_allocation_with(&frame),
            "a decoded payload must be a zero-copy slice of the frame"
        );
    }

    #[test]
    fn hot_path_frames_are_presized_exactly_and_never_reallocate() {
        use abcast_types::codec::{Encode, Encoder};
        // A gossip frame carrying a realistic unordered set is the hot
        // wire path; its encoder is sized by encoded_len and must neither
        // grow nor over-allocate.
        let unordered: Vec<AppMessage> = (0..32)
            .map(|i| AppMessage::from_parts(ProcessId::new(i % 3), u64::from(i), vec![i as u8; 64]))
            .collect();
        let samples = vec![
            AbcastMsg::Gossip {
                round: Round::new(12),
                unordered,
            },
            AbcastMsg::Consensus(ConsensusMsg::instance(
                Round::new(3),
                InstanceMsg::AcceptRequest {
                    ballot: abcast_types::Ballot::new(1, ProcessId::new(0)),
                    value: vec![AppMessage::from_parts(ProcessId::new(0), 7, vec![1u8; 128])],
                },
            )),
        ];
        for sample in samples {
            let expected = sample.encoded_len();
            let mut enc = Encoder::with_capacity(expected);
            sample.encode(&mut enc);
            assert_eq!(enc.len(), expected, "encoded_len must be exact");
            assert!(
                !enc.reallocated(),
                "a presized hot-path encoder must never reallocate mid-encode"
            );
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_torn_wire_frames_never_panic_and_never_misdecode(
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 0..32), 1..6),
            cut_fraction in 0.0f64..1.0) {
            use abcast_types::codec::{from_payload, to_payload};
            let unordered: Vec<AppMessage> = payloads
                .into_iter()
                .enumerate()
                .map(|(i, p)| AppMessage::from_parts(ProcessId::new(0), i as u64, p))
                .collect();
            let msg = AbcastMsg::Gossip { round: Round::new(4), unordered };
            let frame = to_payload(&msg);
            // The intact frame round-trips...
            proptest::prop_assert_eq!(from_payload::<AbcastMsg>(&frame).unwrap(), msg);
            // ...and any strict prefix decodes to an error, never a panic
            // and never a silently wrong message.
            let cut = ((frame.len() as f64 * cut_fraction) as usize).min(frame.len() - 1);
            let torn = frame.slice(..cut);
            proptest::prop_assert!(from_payload::<AbcastMsg>(&torn).is_err());
        }
    }

    #[test]
    fn kinds_and_predicates() {
        let gossip = AbcastMsg::Gossip {
            round: Round::new(3),
            unordered: vec![AppMessage::from_parts(ProcessId::new(0), 0, b"x".to_vec())],
        };
        assert_eq!(gossip.kind(), "gossip");
        assert!(gossip.is_gossip());
        assert!(!gossip.is_state());

        let state = AbcastMsg::State {
            round: Round::new(5),
            agreed: AgreedQueue::new(),
        };
        assert_eq!(state.kind(), "state");
        assert!(state.is_state());
        assert!(state.is_state_transfer());
        assert!(!state.is_state_suffix());

        let suffix = AbcastMsg::StateSuffix {
            round: Round::new(5),
            from_count: 2,
            messages: vec![],
        };
        assert_eq!(suffix.kind(), "state-suffix");
        assert!(suffix.is_state_suffix());
        assert!(suffix.is_state_transfer());
        assert!(!suffix.is_state());

        let consensus = AbcastMsg::Consensus(ConsensusMsg::instance(
            Round::new(1),
            InstanceMsg::Decided { value: Batch::new() },
        ));
        assert_eq!(consensus.kind(), "decided");
        assert!(!consensus.is_gossip());
    }
}
