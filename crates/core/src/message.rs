//! Wire messages of the atomic broadcast protocol.
//!
//! Three kinds of traffic share the process-to-process channel:
//!
//! * `gossip(k, Unordered)` — the periodic dissemination of the round
//!   counter and the unordered set (Figure 2, gossip task);
//! * `state(k, Agreed)` — the state-transfer message of the alternative
//!   protocol (Figure 3, lines *d*–*f*);
//! * the consensus substrate's own messages, wrapped verbatim.

use abcast_consensus::ConsensusMsg;
use abcast_types::{AppMessage, Round};

use crate::queues::{AgreedQueue, Batch};

/// Top-level message type exchanged by atomic broadcast processes.
#[derive(Clone, Debug, PartialEq)]
pub enum AbcastMsg {
    /// `gossip(k_p, Unordered_p)`: the sender's current round and unordered
    /// messages.
    Gossip {
        /// The sender's current round `k_p`.
        round: Round,
        /// The sender's `Unordered_p` set.
        unordered: Vec<AppMessage>,
    },
    /// `state(k, Agreed)`: a snapshot of the sender's delivery sequence,
    /// sent to a process that lagged behind by more than Δ rounds.
    State {
        /// The last round reflected in the snapshot (`k_p − 1` at the
        /// sender).
        round: Round,
        /// The sender's delivery sequence (checkpoint plus explicit
        /// messages).
        agreed: AgreedQueue,
    },
    /// `state-suffix(k, from, messages)`: the portion of the sender's
    /// delivery sequence the lagging receiver is missing, instead of the
    /// whole queue.  Sent when the sender still remembers how many
    /// messages a process at the receiver's round has delivered (the
    /// suffix is then O(gap)); the full [`AbcastMsg::State`] snapshot is
    /// the fallback once that history was compacted away.
    StateSuffix {
        /// The last round reflected in the suffix (`k_p − 1` at the
        /// sender).
        round: Round,
        /// Number of messages the receiver must already have delivered for
        /// the suffix to apply (its delivery count at its gossiped round).
        from_count: u64,
        /// The missing messages, in canonical delivery order.
        messages: Vec<AppMessage>,
    },
    /// A message of the consensus substrate (failure detector heartbeats or
    /// instance messages).
    Consensus(ConsensusMsg<Batch>),
}

impl AbcastMsg {
    /// Short label used in traces and tests.
    pub fn kind(&self) -> &'static str {
        match self {
            AbcastMsg::Gossip { .. } => "gossip",
            AbcastMsg::State { .. } => "state",
            AbcastMsg::StateSuffix { .. } => "state-suffix",
            AbcastMsg::Consensus(inner) => inner.kind(),
        }
    }

    /// `true` for gossip messages.
    pub fn is_gossip(&self) -> bool {
        matches!(self, AbcastMsg::Gossip { .. })
    }

    /// `true` for full-snapshot state-transfer messages.
    pub fn is_state(&self) -> bool {
        matches!(self, AbcastMsg::State { .. })
    }

    /// `true` for suffix state-transfer messages.
    pub fn is_state_suffix(&self) -> bool {
        matches!(self, AbcastMsg::StateSuffix { .. })
    }

    /// `true` for any state-transfer message (full snapshot or suffix).
    pub fn is_state_transfer(&self) -> bool {
        self.is_state() || self.is_state_suffix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_consensus::InstanceMsg;
    use abcast_types::ProcessId;

    #[test]
    fn kinds_and_predicates() {
        let gossip = AbcastMsg::Gossip {
            round: Round::new(3),
            unordered: vec![AppMessage::from_parts(ProcessId::new(0), 0, b"x".to_vec())],
        };
        assert_eq!(gossip.kind(), "gossip");
        assert!(gossip.is_gossip());
        assert!(!gossip.is_state());

        let state = AbcastMsg::State {
            round: Round::new(5),
            agreed: AgreedQueue::new(),
        };
        assert_eq!(state.kind(), "state");
        assert!(state.is_state());
        assert!(state.is_state_transfer());
        assert!(!state.is_state_suffix());

        let suffix = AbcastMsg::StateSuffix {
            round: Round::new(5),
            from_count: 2,
            messages: vec![],
        };
        assert_eq!(suffix.kind(), "state-suffix");
        assert!(suffix.is_state_suffix());
        assert!(suffix.is_state_transfer());
        assert!(!suffix.is_state());

        let consensus = AbcastMsg::Consensus(ConsensusMsg::instance(
            Round::new(1),
            InstanceMsg::Decided { value: Batch::new() },
        ));
        assert_eq!(consensus.kind(), "decided");
        assert!(!consensus.is_gossip());
    }
}
