//! The two interface variables of the protocol (Figure 1): the `Unordered`
//! set and the `Agreed` queue.
//!
//! "Messages requested to be atomically broadcast are added to the
//! `Unordered` set.  Ordered messages are inserted in the `Agreed` queue,
//! according to their relative order. […] Operations on the `Unordered` and
//! `Agreed` variables must be idempotent."
//!
//! [`AgreedQueue`] additionally supports the application-level checkpoints
//! of Section 5.2: the delivered prefix can be *compacted* into an
//! [`AppCheckpoint`] — an opaque application state plus a checkpoint vector
//! clock recording which messages it logically contains — which bounds the
//! size of both the queue and its stable-storage image.
//!
//! One refinement over the paper's presentation: the checkpoint vector
//! clock only ever covers, per sender, a *gap-free* prefix of that sender's
//! sequence numbers.  Messages delivered out of sequence order stay explicit
//! in the queue until the gap closes.  This keeps the "is `m` logically
//! contained in the checkpoint?" test exact even though the ordering
//! protocol does not guarantee per-sender FIFO delivery, at the cost of
//! occasionally compacting a little less.

use std::collections::BTreeMap;

use abcast_types::codec::{Decode, DecodeError, Decoder, Encode, Encoder};
use abcast_types::{AppMessage, MsgId, Payload, Round, VectorClock};

/// A batch of application messages: the value type agreed on by one
/// consensus instance (the paper's `Proposed_p[k]` / `result`).
pub type Batch = Vec<AppMessage>;

/// The set of messages requested for broadcast but not yet ordered.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UnorderedSet {
    messages: BTreeMap<MsgId, AppMessage>,
}

impl UnorderedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        UnorderedSet::default()
    }

    /// Adds `m` unless it is already present (idempotent).
    /// Returns `true` if the message was new.
    pub fn insert(&mut self, m: AppMessage) -> bool {
        self.messages.insert(m.id(), m).is_none()
    }

    /// Adds every message of `batch` (idempotently).
    pub fn insert_all(&mut self, batch: impl IntoIterator<Item = AppMessage>) {
        for m in batch {
            self.insert(m);
        }
    }

    /// Removes every message already present in `agreed`
    /// (`Unordered ← Unordered ⊖ Agreed`).
    pub fn subtract_agreed(&mut self, agreed: &AgreedQueue) {
        self.messages.retain(|id, _| !agreed.contains(*id));
    }

    /// Removes the listed identities.
    pub fn remove_ids<'a>(&mut self, ids: impl IntoIterator<Item = &'a MsgId>) {
        for id in ids {
            self.messages.remove(id);
        }
    }

    /// `true` if the message with identity `id` is in the set.
    pub fn contains(&self, id: MsgId) -> bool {
        self.messages.contains_key(&id)
    }

    /// Number of messages waiting to be ordered.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// `true` when no message is waiting.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// The messages in identity order.
    pub fn iter(&self) -> impl Iterator<Item = &AppMessage> + '_ {
        self.messages.values()
    }

    /// The whole set as a batch (identity order).
    pub fn to_batch(&self) -> Batch {
        self.messages.values().cloned().collect()
    }

    /// The first `max` messages (identity order) as a batch — the value
    /// proposed to one consensus instance under a batching limit
    /// (Section 5.4).
    pub fn batch_up_to(&self, max: usize) -> Batch {
        self.messages.values().take(max).cloned().collect()
    }
}

impl Encode for UnorderedSet {
    fn encode(&self, enc: &mut Encoder) {
        self.to_batch().encode(enc);
    }
}

impl Decode for UnorderedSet {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let batch = Batch::decode(dec)?;
        let mut set = UnorderedSet::new();
        set.insert_all(batch);
        Ok(set)
    }
}

/// An application-level checkpoint (Section 5.2): the opaque state returned
/// by the `A-checkpoint` upcall plus the vector clock of the messages it
/// logically contains.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppCheckpoint {
    /// Serialized application state.
    pub state: Payload,
    /// Which messages the state logically contains.
    pub vc: VectorClock,
}

impl AppCheckpoint {
    /// The initial checkpoint `(A-checkpoint(⊥), VC(⊥))`: empty state, no
    /// message covered.
    pub fn initial() -> Self {
        AppCheckpoint::default()
    }
}

impl Encode for AppCheckpoint {
    fn encode(&self, enc: &mut Encoder) {
        self.state.encode(enc);
        self.vc.encode(enc);
    }
}

impl Decode for AppCheckpoint {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(AppCheckpoint {
            state: Payload::decode(dec)?,
            vc: VectorClock::decode(dec)?,
        })
    }
}

/// The delivery sequence of one process: an optional application checkpoint
/// followed by the explicitly delivered messages, in delivery order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AgreedQueue {
    checkpoint: AppCheckpoint,
    messages: Vec<AppMessage>,
    total_delivered: u64,
}

impl AgreedQueue {
    /// Creates an empty delivery sequence.
    pub fn new() -> Self {
        AgreedQueue::default()
    }

    /// The paper's `A-delivered(m, Δ_p)` predicate: `true` if message `id`
    /// belongs to the delivery sequence, either explicitly or logically
    /// through the checkpoint.
    pub fn contains(&self, id: MsgId) -> bool {
        self.checkpoint.vc.contains(id) || self.messages.iter().any(|m| m.id() == id)
    }

    /// Appends the messages of `result` that are not already in the
    /// sequence, following the predetermined deterministic rule: messages
    /// are considered in identity order (`Agreed ← Agreed ⊕ result`).
    /// Returns the newly delivered messages, in the order they were
    /// appended.
    pub fn append_batch(&mut self, result: &[AppMessage]) -> Vec<AppMessage> {
        let mut sorted: Vec<&AppMessage> = result.iter().collect();
        sorted.sort_by_key(|m| m.id());
        sorted.dedup_by_key(|m| m.id());
        let mut delivered = Vec::new();
        for m in sorted {
            if !self.contains(m.id()) {
                self.messages.push(m.clone());
                self.total_delivered += 1;
                delivered.push(m.clone());
            }
        }
        delivered
    }

    /// Appends `msgs` preserving *their given order*, skipping messages
    /// already in the sequence.  Returns the newly appended messages.
    ///
    /// [`AgreedQueue::append_batch`] orders a consensus batch by the
    /// deterministic identity rule; this method instead trusts the caller's
    /// order.  It is used where that order *is* the canonical delivery
    /// order already: replaying `(k, Agreed)` delta records on recovery,
    /// and installing the suffix of a peer's delivery sequence during a
    /// state transfer (Section 5.3) — both may span several rounds, so
    /// re-sorting by identity would destroy Total Order.
    pub fn append_in_order(&mut self, msgs: &[AppMessage]) -> Vec<AppMessage> {
        let mut delivered = Vec::new();
        for m in msgs {
            if !self.contains(m.id()) {
                self.messages.push(m.clone());
                self.total_delivered += 1;
                delivered.push(m.clone());
            }
        }
        delivered
    }

    /// The explicitly stored suffix of the sequence (everything after the
    /// checkpoint), in delivery order.
    pub fn messages(&self) -> &[AppMessage] {
        &self.messages
    }

    /// The application checkpoint heading the sequence.
    pub fn checkpoint(&self) -> &AppCheckpoint {
        &self.checkpoint
    }

    /// Total number of messages ever delivered into this sequence,
    /// including those compacted into the checkpoint.
    pub fn total_delivered(&self) -> u64 {
        self.total_delivered
    }

    /// Number of messages currently stored explicitly (not compacted).
    pub fn explicit_len(&self) -> usize {
        self.messages.len()
    }

    /// `true` when nothing has ever been delivered.
    pub fn is_empty(&self) -> bool {
        self.total_delivered == 0
    }

    /// Compacts the delivered prefix into an application checkpoint.
    ///
    /// `state` must be the application state that logically contains every
    /// message reported by the returned list (the `A-checkpoint` upcall
    /// result).  Only gap-free per-sender prefixes are folded into the
    /// checkpoint vector clock (see the module documentation); the
    /// remaining messages stay explicit.  Returns the messages that were
    /// compacted, in their original delivery order.
    pub fn compact(&mut self, state: Payload) -> Vec<AppMessage> {
        // Highest gap-free sequence number per sender, continuing from the
        // existing checkpoint coverage.
        let mut highest: BTreeMap<_, u64> = BTreeMap::new();
        let mut covered: Vec<AppMessage> = Vec::new();
        let mut remaining: Vec<AppMessage> = Vec::new();

        // Consider messages in identity order per sender to extend prefixes.
        let mut by_sender: BTreeMap<_, Vec<&AppMessage>> = BTreeMap::new();
        for m in &self.messages {
            by_sender.entry(m.sender()).or_default().push(m);
        }
        let mut coverable: std::collections::BTreeSet<MsgId> = std::collections::BTreeSet::new();
        for (sender, mut msgs) in by_sender {
            msgs.sort_by_key(|m| m.seq());
            let mut next = self
                .checkpoint
                .vc
                .get(sender)
                .map(|covered| covered + 1)
                .unwrap_or(0);
            for m in msgs {
                if m.seq() == next {
                    coverable.insert(m.id());
                    highest.insert(sender, m.seq());
                    next += 1;
                } else if m.seq() < next {
                    // Already covered by the checkpoint; cannot happen for
                    // explicit messages, but harmless.
                    coverable.insert(m.id());
                } else {
                    break;
                }
            }
        }

        if coverable.is_empty() {
            // Nothing new can be folded in: leave the existing checkpoint
            // (including its application state) untouched.
            return covered;
        }

        for m in std::mem::take(&mut self.messages) {
            if coverable.contains(&m.id()) {
                covered.push(m);
            } else {
                remaining.push(m);
            }
        }
        self.messages = remaining;

        let mut vc = self.checkpoint.vc.clone();
        for (sender, seq) in highest {
            vc.observe(MsgId::new(sender, seq));
        }
        self.checkpoint = AppCheckpoint { state, vc };
        covered
    }

    /// Replaces the opaque application state of the checkpoint without
    /// touching its coverage.
    ///
    /// [`AgreedQueue::compact`] must decide *which* messages are covered
    /// before the application can produce the state that contains them, so
    /// the protocol compacts first (with a placeholder) and installs the
    /// `A-checkpoint` result afterwards.
    pub fn set_checkpoint_state(&mut self, state: Payload) {
        self.checkpoint.state = state;
    }

    /// Replaces this sequence wholesale with one received in a `state`
    /// message (Section 5.3).  Used by a process that fell behind by more
    /// than Δ rounds.
    pub fn adopt(&mut self, other: AgreedQueue) {
        *self = other;
    }

    /// Approximate size of the sequence in bytes, as it would be logged or
    /// shipped in a state-transfer message.
    pub fn size_bytes(&self) -> usize {
        self.encoded_len()
    }
}

/// Reorder buffer between the consensus substrate and the delivery path.
///
/// With pipelining (`ProtocolConfig::pipeline_depth > 1`) consensus
/// instances for rounds `k .. k + W` run concurrently and may decide in any
/// order, but the protocol must *apply* decided batches strictly by round
/// (Total Order depends on every process folding the same batches into
/// `Agreed` in the same round order).  Decisions arriving early are parked
/// here until every lower round has been committed.
///
/// The buffer is volatile: after a crash the consensus substrate re-learns
/// in-flight decisions from its per-instance log and the recovery replay
/// re-fills whatever is needed, so nothing here is persisted.
#[derive(Clone, Debug, Default)]
pub struct DecisionBuffer {
    decisions: BTreeMap<Round, Batch>,
}

impl DecisionBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        DecisionBuffer::default()
    }

    /// Parks the decided `batch` of `round`.  Idempotent: consensus never
    /// decides two different values for one instance, so a re-learned
    /// decision simply overwrites the identical one.
    pub fn insert(&mut self, round: Round, batch: Batch) {
        self.decisions.insert(round, batch);
    }

    /// Removes and returns the decision of `round`, if buffered.
    pub fn take(&mut self, round: Round) -> Option<Batch> {
        self.decisions.remove(&round)
    }

    /// Drops every buffered decision strictly below `round` — used after a
    /// state transfer jumped the round counter past them.
    pub fn drop_below(&mut self, round: Round) {
        self.decisions = self.decisions.split_off(&round);
    }

    /// Number of decisions currently parked out of order.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// `true` when no decision is parked.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

impl Encode for AgreedQueue {
    fn encode(&self, enc: &mut Encoder) {
        self.checkpoint.encode(enc);
        self.messages.encode(enc);
        enc.put_u64(self.total_delivered);
    }
}

impl Decode for AgreedQueue {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(AgreedQueue {
            checkpoint: AppCheckpoint::decode(dec)?,
            messages: Vec::<AppMessage>::decode(dec)?,
            total_delivered: dec.take_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_types::codec::{from_bytes, to_bytes};
    use abcast_types::ProcessId;
    use proptest::prelude::*;

    fn msg(sender: u32, seq: u64) -> AppMessage {
        AppMessage::from_parts(
            ProcessId::new(sender),
            seq,
            format!("payload-{sender}-{seq}").into_bytes(),
        )
    }

    #[test]
    fn unordered_insert_is_idempotent() {
        let mut u = UnorderedSet::new();
        assert!(u.insert(msg(0, 0)));
        assert!(!u.insert(msg(0, 0)));
        assert_eq!(u.len(), 1);
        assert!(u.contains(msg(0, 0).id()));
        assert!(!u.is_empty());
    }

    #[test]
    fn unordered_subtracts_agreed_messages() {
        let mut u = UnorderedSet::new();
        u.insert_all([msg(0, 0), msg(0, 1), msg(1, 0)]);
        let mut agreed = AgreedQueue::new();
        agreed.append_batch(&[msg(0, 0), msg(1, 0)]);
        u.subtract_agreed(&agreed);
        assert_eq!(u.len(), 1);
        assert!(u.contains(msg(0, 1).id()));
    }

    #[test]
    fn unordered_batching_respects_the_limit_and_identity_order() {
        let mut u = UnorderedSet::new();
        u.insert_all([msg(1, 5), msg(0, 2), msg(0, 1), msg(2, 0)]);
        let all = u.to_batch();
        assert_eq!(
            all.iter().map(AppMessage::id).collect::<Vec<_>>(),
            vec![msg(0, 1).id(), msg(0, 2).id(), msg(1, 5).id(), msg(2, 0).id()]
        );
        let limited = u.batch_up_to(2);
        assert_eq!(limited.len(), 2);
        assert_eq!(limited[0].id(), msg(0, 1).id());
        assert_eq!(limited[1].id(), msg(0, 2).id());
    }

    #[test]
    fn unordered_codec_round_trip() {
        let mut u = UnorderedSet::new();
        u.insert_all([msg(0, 0), msg(3, 7)]);
        let back: UnorderedSet = from_bytes(&to_bytes(&u)).unwrap();
        assert_eq!(back, u);
    }

    #[test]
    fn agreed_appends_in_deterministic_order_without_duplicates() {
        let mut a = AgreedQueue::new();
        let delivered = a.append_batch(&[msg(1, 0), msg(0, 0), msg(1, 0)]);
        assert_eq!(
            delivered.iter().map(AppMessage::id).collect::<Vec<_>>(),
            vec![msg(0, 0).id(), msg(1, 0).id()]
        );
        // Re-appending the same batch delivers nothing (idempotence).
        assert!(a.append_batch(&[msg(0, 0), msg(1, 0)]).is_empty());
        assert_eq!(a.total_delivered(), 2);
        assert_eq!(a.explicit_len(), 2);
        assert!(a.contains(msg(0, 0).id()));
        assert!(!a.contains(msg(2, 0).id()));
    }

    #[test]
    fn two_processes_appending_the_same_batches_agree_exactly() {
        let batches = vec![
            vec![msg(0, 0), msg(1, 0)],
            vec![msg(1, 1), msg(0, 1), msg(1, 0)],
            vec![msg(2, 0)],
        ];
        let mut a = AgreedQueue::new();
        let mut b = AgreedQueue::new();
        for batch in &batches {
            a.append_batch(batch);
            b.append_batch(batch);
        }
        assert_eq!(a, b);
        assert_eq!(a.messages(), b.messages());
    }

    #[test]
    fn compaction_moves_gap_free_prefixes_into_the_checkpoint() {
        let mut a = AgreedQueue::new();
        // p0: 0,1 delivered; p1: 0 and 2 delivered (gap at 1).
        a.append_batch(&[msg(0, 0), msg(0, 1), msg(1, 0), msg(1, 2)]);
        let covered = a.compact(Payload::from_static(b"app-state"));
        let covered_ids: Vec<MsgId> = covered.iter().map(AppMessage::id).collect();
        assert!(covered_ids.contains(&msg(0, 0).id()));
        assert!(covered_ids.contains(&msg(0, 1).id()));
        assert!(covered_ids.contains(&msg(1, 0).id()));
        // The out-of-order message stays explicit.
        assert!(!covered_ids.contains(&msg(1, 2).id()));
        assert_eq!(a.explicit_len(), 1);
        assert_eq!(a.checkpoint().state.as_ref(), b"app-state");

        // Containment is still exact.
        assert!(a.contains(msg(0, 0).id()));
        assert!(a.contains(msg(1, 0).id()));
        assert!(a.contains(msg(1, 2).id()));
        assert!(!a.contains(msg(1, 1).id()));
        assert_eq!(a.total_delivered(), 4);
    }

    #[test]
    fn compaction_then_gap_closing_extends_coverage_later() {
        let mut a = AgreedQueue::new();
        a.append_batch(&[msg(0, 0), msg(0, 2)]);
        a.compact(Payload::from_static(b"s1"));
        assert_eq!(a.explicit_len(), 1); // m(0,2) kept explicit

        // The gap closes: m(0,1) is delivered later.
        a.append_batch(&[msg(0, 1)]);
        assert_eq!(a.explicit_len(), 2);
        let covered = a.compact(Payload::from_static(b"s2"));
        assert_eq!(covered.len(), 2);
        assert_eq!(a.explicit_len(), 0);
        assert!(a.contains(msg(0, 2).id()));
        assert_eq!(a.checkpoint().vc.get(ProcessId::new(0)), Some(2));
    }

    #[test]
    fn messages_covered_by_checkpoint_are_not_redelivered() {
        let mut a = AgreedQueue::new();
        a.append_batch(&[msg(0, 0), msg(0, 1)]);
        a.compact(Payload::from_static(b"state"));
        // A late duplicate of an already-compacted message must not be
        // delivered again (Integrity).
        let delivered = a.append_batch(&[msg(0, 0), msg(0, 2)]);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].id(), msg(0, 2).id());
        assert_eq!(a.total_delivered(), 3);
    }

    #[test]
    fn append_in_order_preserves_the_given_order_and_skips_duplicates() {
        // Build the canonical sequence: rounds delivered (1,5) then (0,0)
        // then (1,6) — an order append_batch's identity sort would destroy.
        let mut canonical = AgreedQueue::new();
        canonical.append_batch(&[msg(1, 5)]);
        canonical.append_batch(&[msg(0, 0)]);
        canonical.append_batch(&[msg(1, 6)]);
        let sequence: Vec<AppMessage> = canonical.messages().to_vec();

        // A peer holding a prefix receives the multi-round suffix.
        let mut lagging = AgreedQueue::new();
        lagging.append_batch(&[msg(1, 5)]);
        let newly = lagging.append_in_order(&sequence[1..]);
        assert_eq!(newly.len(), 2);
        assert_eq!(lagging.messages(), canonical.messages());
        assert_eq!(lagging.total_delivered(), 3);

        // Replaying the same suffix is a no-op (idempotence).
        assert!(lagging.append_in_order(&sequence[1..]).is_empty());
        assert_eq!(lagging.total_delivered(), 3);
    }

    #[test]
    fn adopt_replaces_the_sequence() {
        let mut ours = AgreedQueue::new();
        ours.append_batch(&[msg(0, 0)]);
        let mut theirs = AgreedQueue::new();
        theirs.append_batch(&[msg(0, 0), msg(0, 1), msg(1, 0)]);
        theirs.compact(Payload::from_static(b"remote-state"));
        ours.adopt(theirs.clone());
        assert_eq!(ours, theirs);
        assert_eq!(ours.total_delivered(), 3);
    }

    #[test]
    fn agreed_codec_round_trip_with_checkpoint() {
        let mut a = AgreedQueue::new();
        a.append_batch(&[msg(0, 0), msg(1, 0), msg(1, 1)]);
        a.compact(Payload::from_static(b"state"));
        a.append_batch(&[msg(2, 0)]);
        let back: AgreedQueue = from_bytes(&to_bytes(&a)).unwrap();
        assert_eq!(back, a);
        assert!(a.size_bytes() > 0);
    }

    #[test]
    fn initial_checkpoint_is_empty() {
        let cp = AppCheckpoint::initial();
        assert!(cp.state.is_empty());
        assert!(cp.vc.is_empty());
        let q = AgreedQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.total_delivered(), 0);
    }

    #[test]
    fn decision_buffer_releases_rounds_strictly_in_order() {
        let mut buf = DecisionBuffer::new();
        assert!(buf.is_empty());
        buf.insert(Round::new(2), vec![msg(0, 2)]);
        buf.insert(Round::new(1), vec![msg(0, 1)]);
        assert_eq!(buf.len(), 2);
        // Round 0 has not decided: nothing to take.
        assert_eq!(buf.take(Round::new(0)), None);
        // Rounds come out by number, independent of insertion order.
        assert_eq!(buf.take(Round::new(1)), Some(vec![msg(0, 1)]));
        assert_eq!(buf.take(Round::new(2)), Some(vec![msg(0, 2)]));
        assert!(buf.take(Round::new(2)).is_none(), "taking twice yields nothing");
        assert!(buf.is_empty());
    }

    #[test]
    fn decision_buffer_drop_below_discards_stale_rounds() {
        let mut buf = DecisionBuffer::new();
        for k in 0..5u64 {
            buf.insert(Round::new(k), vec![msg(0, k)]);
        }
        buf.drop_below(Round::new(3));
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.take(Round::new(2)), None, "jumped rounds are gone");
        assert!(buf.take(Round::new(3)).is_some());
        assert!(buf.take(Round::new(4)).is_some());
    }

    proptest! {
        #[test]
        fn prop_append_is_idempotent_and_order_insensitive_across_replicas(
            batches in proptest::collection::vec(
                proptest::collection::vec((0u32..3, 0u64..20), 0..6), 1..8)) {
            // Two replicas applying the same sequence of batches (with
            // internal duplicates) end with identical queues.
            let to_batch = |spec: &Vec<(u32, u64)>| -> Batch {
                spec.iter().map(|(s, q)| msg(*s, *q)).collect()
            };
            let mut a = AgreedQueue::new();
            let mut b = AgreedQueue::new();
            for spec in &batches {
                let batch = to_batch(spec);
                a.append_batch(&batch);
                b.append_batch(&batch);
                // Replaying a batch twice changes nothing.
                b.append_batch(&batch);
            }
            prop_assert_eq!(&a, &b);
            // No duplicates anywhere (Integrity).
            let mut seen = std::collections::BTreeSet::new();
            for m in a.messages() {
                prop_assert!(seen.insert(m.id()), "duplicate {:?}", m.id());
            }
        }

        #[test]
        fn prop_compaction_preserves_containment_and_count(
            ids in proptest::collection::btree_set((0u32..3, 0u64..15), 1..30),
            compact_at in 0usize..30) {
            let all: Vec<AppMessage> = ids.iter().map(|(s, q)| msg(*s, *q)).collect();
            let mut q = AgreedQueue::new();
            let cut = compact_at.min(all.len());
            q.append_batch(&all[..cut]);
            q.compact(Payload::from_static(b"s"));
            q.append_batch(&all[cut..]);
            prop_assert_eq!(q.total_delivered(), all.len() as u64);
            for m in &all {
                prop_assert!(q.contains(m.id()), "lost {:?}", m.id());
            }
            // Codec round-trip preserves everything.
            let back: AgreedQueue = from_bytes(&to_bytes(&q)).unwrap();
            prop_assert_eq!(back, q);
        }
    }
}
