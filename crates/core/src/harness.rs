//! Simulation harness for whole atomic broadcast deployments.
//!
//! Tests, benchmarks and the experiment binaries all need the same thing: a
//! cluster of `n` processes running [`AtomicBroadcast`] under the
//! deterministic simulator, with helpers to broadcast messages, inject
//! faults, run until delivery and check the Section 2.2 properties.
//! [`Cluster`] packages exactly that.

use std::collections::BTreeSet;

use abcast_consensus::ConsensusConfig;
use abcast_net::{Actor, FramedActor, LinkConfig};
use abcast_sim::{FaultPlan, SimConfig, SimStats, Simulation};
use abcast_storage::{StorageRegistry, StorageSnapshot};
use abcast_types::{
    AppMessage, MsgId, ProcessId, ProcessSet, ProtocolConfig, SimDuration, SimTime,
};

use crate::properties::{check_all, Violation};
use crate::protocol::AtomicBroadcast;
use crate::queues::AgreedQueue;

/// Configuration of a simulated cluster.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of processes.
    pub processes: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Link behaviour.
    pub link: LinkConfig,
    /// Atomic broadcast configuration (basic / alternative / naive).
    pub protocol: ProtocolConfig,
    /// Consensus configuration (crash-recovery / crash-stop).
    pub consensus: ConsensusConfig,
}

impl ClusterConfig {
    /// A cluster of `n` processes running the basic protocol over a
    /// LAN-like lossy link.
    pub fn basic(n: usize) -> Self {
        ClusterConfig {
            processes: n,
            seed: 0,
            link: LinkConfig::lan(),
            protocol: ProtocolConfig::basic(),
            consensus: ConsensusConfig::crash_recovery(),
        }
    }

    /// A cluster of `n` processes running the alternative protocol
    /// (Section 5) over a LAN-like lossy link.
    pub fn alternative(n: usize) -> Self {
        ClusterConfig {
            protocol: ProtocolConfig::alternative(),
            ..ClusterConfig::basic(n)
        }
    }

    /// Returns this configuration with another seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns this configuration with another link model.
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Returns this configuration with another protocol configuration.
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Returns this configuration with another consensus configuration.
    pub fn with_consensus(mut self, consensus: ConsensusConfig) -> Self {
        self.consensus = consensus;
        self
    }

    /// The framed-actor factory every deployment of this configuration
    /// uses — the simulated [`Cluster`], and the socket-backed
    /// [`crate::socket::TcpCluster`] which runs the *same* actors over
    /// real TCP connections.
    pub fn framed_factory(
        &self,
    ) -> impl Fn(ProcessId, abcast_storage::SharedStorage) -> FramedAbcast + Send + Sync + Clone + 'static
    {
        let protocol = self.protocol.clone();
        let consensus = self.consensus.clone();
        move |_p, _storage| {
            FramedActor::new(AtomicBroadcast::new(protocol.clone(), consensus.clone()))
        }
    }
}

/// The actor type a [`Cluster`] deploys: the protocol behind a byte wire.
///
/// Every message between cluster processes is encoded into a length-exact
/// [`bytes::Bytes`] frame at the sender and decoded zero-copy at the
/// receiver (payloads of the decoded message are refcounted views of the
/// frame).  [`FramedActor`] derefs to [`AtomicBroadcast`], so inspection
/// code reads through it transparently.
pub type FramedAbcast = FramedActor<AtomicBroadcast>;

/// A simulated deployment of [`AtomicBroadcast`] processes speaking byte
/// frames.
pub struct Cluster {
    sim: Simulation<FramedAbcast>,
    broadcast_ids: BTreeSet<MsgId>,
}

impl Cluster {
    /// Builds and starts the cluster over fresh in-memory stable storage.
    pub fn new(config: ClusterConfig) -> Self {
        let storage = StorageRegistry::in_memory(config.processes);
        Cluster::with_registry(config, storage)
    }

    /// Builds and starts the cluster over an existing storage registry —
    /// e.g. file- or WAL-backed storages (experiment E11), or storages
    /// carried over from a previous deployment to exercise whole-cluster
    /// recovery.
    pub fn with_registry(config: ClusterConfig, storage: StorageRegistry) -> Self {
        let factory = config.framed_factory();
        let sim = Simulation::with_storage(
            SimConfig {
                processes: config.processes,
                seed: config.seed,
                link: config.link.clone(),
            },
            storage,
            factory,
        );
        Cluster {
            sim,
            broadcast_ids: BTreeSet::new(),
        }
    }

    /// The underlying simulation (for fault injection, link manipulation,
    /// storage inspection and custom predicates).
    pub fn sim(&self) -> &Simulation<FramedAbcast> {
        &self.sim
    }

    /// Mutable access to the underlying simulation.
    pub fn sim_mut(&mut self) -> &mut Simulation<FramedAbcast> {
        &mut self.sim
    }

    /// Total wire frames received that failed to decode, across all
    /// currently-up processes.  Zero in any healthy run.
    pub fn decode_failures(&self) -> u64 {
        self.sim
            .processes()
            .iter()
            .filter_map(|p| self.sim.actor(p))
            .map(FramedAbcast::decode_failures)
            .sum()
    }

    /// The set of processes.
    pub fn processes(&self) -> ProcessSet {
        self.sim.processes().clone()
    }

    /// A-broadcasts `payload` at process `p` right now.  Returns the
    /// assigned identity, or `None` if `p` is currently down.
    pub fn broadcast(&mut self, p: ProcessId, payload: impl Into<Vec<u8>>) -> Option<MsgId> {
        let payload = payload.into();
        let id = self.sim.with_actor_mut(p, |actor, ctx| {
            actor.with_inner_ctx(ctx, |inner, ctx| inner.a_broadcast(payload, ctx))
        })?;
        self.broadcast_ids.insert(id);
        Some(id)
    }

    /// Broadcasts `count` messages of `payload_size` bytes, round-robin
    /// over the processes that are currently up, spaced `gap` apart in
    /// virtual time.  Returns the identities actually broadcast.
    pub fn broadcast_spread(
        &mut self,
        count: usize,
        payload_size: usize,
        gap: SimDuration,
    ) -> Vec<MsgId> {
        let processes: Vec<ProcessId> = self.sim.processes().iter().collect();
        let mut ids = Vec::new();
        for i in 0..count {
            let p = processes[i % processes.len()];
            if !self.sim.is_up(p) {
                // Skip processes that are down at submission time; the
                // message is considered never broadcast (Section 4.2).
                self.sim.run_for(gap);
                continue;
            }
            let payload = vec![(i % 251) as u8; payload_size];
            if let Some(id) = self.broadcast(p, payload) {
                ids.push(id);
            }
            if !gap.is_zero() {
                self.sim.run_for(gap);
            }
        }
        ids
    }

    /// Applies a fault plan to the cluster.
    pub fn apply_faults(&mut self, plan: &FaultPlan) {
        plan.apply(&mut self.sim);
    }

    /// Fires the checkpoint task of process `p` right now, exactly as if
    /// its [`crate::protocol::CHECKPOINT_TIMER`] had expired.
    ///
    /// Equivalence tests across runtimes (simulated vs. socket-backed)
    /// drive checkpoints through this instead of the free-running periodic
    /// timer, so the grouping of deliveries into `(k, Agreed)` delta
    /// records is a deterministic function of the workload rather than of
    /// scheduling.  Returns `false` while `p` is down.
    pub fn checkpoint_tick(&mut self, p: ProcessId) -> bool {
        self.sim
            .with_actor_mut(p, |actor, ctx| {
                actor.on_timer(crate::protocol::CHECKPOINT_TIMER, ctx);
            })
            .is_some()
    }

    /// Runs for `duration` of virtual time.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.sim.run_for(duration);
    }

    /// Runs until every process in `who` is up and has delivered every
    /// identity in `ids`, or until `deadline`.  Returns `true` on success.
    pub fn run_until_delivered(
        &mut self,
        who: &[ProcessId],
        ids: &[MsgId],
        deadline: SimTime,
    ) -> bool {
        let who = who.to_vec(); // xlint:allow(Z1) — a few Copy process ids owned by the predicate, not payload bytes
        let ids = ids.to_vec(); // xlint:allow(Z1) — a few Copy message ids owned by the predicate, not payload bytes
        self.sim.run_until(deadline, |sim| {
            who.iter().all(|p| {
                sim.actor(*p)
                    .map(|a| ids.iter().all(|id| a.is_delivered(*id)))
                    .unwrap_or(false)
            })
        })
    }

    /// Convenience: runs until every *currently configured* process has
    /// delivered all identities ever broadcast through this harness.
    pub fn run_until_all_delivered(&mut self, deadline: SimTime) -> bool {
        let everyone: Vec<ProcessId> = self.sim.processes().iter().collect();
        let ids: Vec<MsgId> = self.broadcast_ids.iter().copied().collect();
        self.run_until_delivered(&everyone, &ids, deadline)
    }

    /// The delivery sequence of process `p` (`None` while it is down).
    pub fn agreed(&self, p: ProcessId) -> Option<&AgreedQueue> {
        self.sim.actor(p).map(|a| a.inner().agreed())
    }

    /// The explicitly delivered messages of `p`.
    pub fn delivered(&self, p: ProcessId) -> Vec<AppMessage> {
        self.sim
            .actor(p)
            .map(|a| a.delivered_messages().to_vec()) // xlint:allow(Z1) — inspection hands out owned copies; payload Bytes inside stay refcounted
            .unwrap_or_default()
    }

    /// Identities ever broadcast through this harness.
    pub fn broadcast_ids(&self) -> &BTreeSet<MsgId> {
        &self.broadcast_ids
    }

    /// Identities delivered by at least one currently-up process.
    pub fn delivered_by_any(&self) -> BTreeSet<MsgId> {
        let mut out = BTreeSet::new();
        for p in self.sim.processes().iter() {
            if let Some(actor) = self.sim.actor(p) {
                for id in &self.broadcast_ids {
                    if actor.is_delivered(*id) {
                        out.insert(*id);
                    }
                }
            }
        }
        out
    }

    /// Checks Validity, Integrity, Total Order and Termination over the
    /// current state, treating `good` as the good processes and requiring
    /// them to have delivered `must_deliver`.
    pub fn check_properties(
        &self,
        good: &[ProcessId],
        must_deliver: &BTreeSet<MsgId>,
    ) -> Vec<Violation> {
        let queues: Vec<&AgreedQueue> = self
            .sim
            .processes()
            .iter()
            .filter_map(|p| self.sim.actor(p).map(|a| a.inner().agreed()))
            .collect();
        let good_indices: Vec<usize> = good.iter().map(|p| p.index()).collect();
        check_all(&queues, &good_indices, &self.broadcast_ids, must_deliver)
    }

    /// Asserts that all four properties hold; panics with the violations
    /// otherwise.  `good` defaults to every currently-up process and
    /// `must_deliver` to everything delivered by anyone.
    pub fn assert_properties(&self) {
        let good: Vec<ProcessId> = self
            .sim
            .processes()
            .iter()
            .filter(|p| self.sim.is_up(*p))
            .collect();
        let must = self.delivered_by_any();
        let violations = self.check_properties(&good, &must);
        assert!(violations.is_empty(), "property violations: {violations:#?}");
    }

    /// Total stable-storage write operations and bytes across the cluster.
    pub fn storage_totals(&self) -> StorageSnapshot {
        self.sim
            .processes()
            .iter()
            .map(|p| self.sim.storage_for(p).metrics().snapshot())
            .fold(StorageSnapshot::default(), |acc, s| acc.plus(&s))
    }

    /// Stable-storage counters of one process.
    pub fn storage_of(&self, p: ProcessId) -> StorageSnapshot {
        self.sim.storage_for(p).metrics().snapshot()
    }

    /// Simulation statistics (events, crashes, recoveries).
    pub fn stats(&self) -> SimStats {
        self.sim.stats()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcast_types::SimDuration;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn three_process_cluster_delivers_a_message_everywhere_in_order() {
        let mut cluster = Cluster::new(ClusterConfig::basic(3).with_seed(1));
        let id = cluster.broadcast(p(0), b"hello".to_vec()).unwrap();
        let ok = cluster.run_until_all_delivered(SimTime::from_micros(5_000_000));
        assert!(ok, "message {id} was not delivered everywhere in time");
        for q in [p(0), p(1), p(2)] {
            let delivered = cluster.delivered(q);
            assert_eq!(delivered.len(), 1);
            assert_eq!(delivered[0].id(), id);
            assert_eq!(delivered[0].payload().as_ref(), b"hello");
        }
        cluster.assert_properties();
    }

    #[test]
    fn broadcasts_from_every_process_are_totally_ordered() {
        let mut cluster = Cluster::new(ClusterConfig::basic(3).with_seed(2));
        let ids = cluster.broadcast_spread(12, 16, SimDuration::from_millis(3));
        assert_eq!(ids.len(), 12);
        let ok = cluster.run_until_all_delivered(SimTime::from_micros(20_000_000));
        assert!(ok, "not all messages delivered in time");
        let reference = cluster.delivered(p(0));
        assert_eq!(reference.len(), 12);
        for q in [p(1), p(2)] {
            assert_eq!(cluster.delivered(q), reference, "sequences differ at {q}");
        }
        cluster.assert_properties();
        // Rounds were actually used to order (at least one, at most one per
        // message).
        let rounds = cluster.sim().actor(p(0)).unwrap().metrics().rounds_completed;
        assert!((1..=12 + 2).contains(&rounds), "rounds = {rounds}");
    }

    #[test]
    fn alternative_protocol_also_orders_and_checkpoints() {
        let mut cluster = Cluster::new(ClusterConfig::alternative(3).with_seed(3));
        cluster.broadcast_spread(10, 8, SimDuration::from_millis(5));
        let ok = cluster.run_until_all_delivered(SimTime::from_micros(20_000_000));
        assert!(ok);
        // Let the checkpoint task run.
        cluster.run_for(SimDuration::from_millis(500));
        cluster.assert_properties();
        let metrics = cluster.sim().actor(p(1)).unwrap().metrics().clone();
        assert!(metrics.agreed_checkpoints_logged > 0);
        assert!(metrics.app_checkpoints_taken > 0);
    }

    #[test]
    fn pipelined_cluster_delivers_the_sequential_sequence() {
        // Simulation equivalence: the same single-sender workload, ordered
        // once with the sequential round loop (W = 1) and once with four
        // rounds in flight (W = 4), must produce the *identical* delivery
        // sequence — pipelining reorders the deciding, never the applying.
        use abcast_types::BatchingPolicy;
        let run = |depth: u64| {
            let protocol = ProtocolConfig::basic()
                .with_batching(BatchingPolicy::EarlyReturn { max_batch: 2 })
                .with_pipeline_depth(depth);
            let mut cluster = Cluster::new(
                ClusterConfig::basic(3)
                    .with_seed(41)
                    .with_link(abcast_net::LinkConfig::reliable())
                    .with_protocol(protocol),
            );
            let mut ids = Vec::new();
            for i in 0..10u8 {
                ids.extend(cluster.broadcast(p(0), vec![i; 4]));
                cluster.run_for(SimDuration::from_millis(2));
            }
            assert!(
                cluster.run_until_all_delivered(cluster.now() + SimDuration::from_secs(30)),
                "W = {depth} run must complete"
            );
            cluster.assert_properties();
            let in_flight_peak = cluster
                .sim()
                .actor(p(0))
                .unwrap()
                .metrics()
                .max_rounds_in_flight;
            (cluster.delivered(p(0)), in_flight_peak)
        };
        let (sequential, seq_peak) = run(1);
        let (pipelined, pipe_peak) = run(4);
        assert_eq!(sequential.len(), 10);
        assert_eq!(
            sequential, pipelined,
            "W = 4 must apply the same sequence as W = 1"
        );
        assert_eq!(seq_peak, 1, "the sequential run never runs ahead");
        assert!(
            pipe_peak >= 2,
            "the pipelined run must actually overlap rounds (peak {pipe_peak})"
        );
    }

    #[test]
    fn framed_wire_reproduces_the_typed_run_bit_for_bit() {
        // The same workload, same seed, same lossy link — once with actors
        // exchanging typed `AbcastMsg` values directly (the pre-frame
        // transport) and once through the byte-framed cluster.  Delivery
        // order, checkpoints and the persisted `(k, Agreed)` delta records
        // must be byte-for-byte identical: the frame codec and the
        // zero-copy payload path may not change one observable bit.
        use abcast_storage::keys;
        use abcast_types::SimDuration;
        let protocol = ProtocolConfig::alternative().with_delta(3);
        let consensus = ConsensusConfig::crash_recovery();

        let typed_storage = StorageRegistry::in_memory(3);
        let mut typed = abcast_sim::Simulation::with_storage(
            abcast_sim::SimConfig {
                processes: 3,
                seed: 77,
                link: LinkConfig::lan(),
            },
            typed_storage.clone(),
            {
                let (protocol, consensus) = (protocol.clone(), consensus.clone());
                move |_p, _s| AtomicBroadcast::new(protocol.clone(), consensus.clone())
            },
        );

        let framed_storage = StorageRegistry::in_memory(3);
        let mut framed = Cluster::with_registry(
            ClusterConfig {
                processes: 3,
                seed: 77,
                link: LinkConfig::lan(),
                protocol,
                consensus,
            },
            framed_storage.clone(),
        );

        for i in 0..10u8 {
            let sender = p(u32::from(i) % 3);
            typed.with_actor_mut(sender, |a, ctx| a.a_broadcast(vec![i; 8], ctx));
            framed.broadcast(sender, vec![i; 8]);
            typed.run_for(SimDuration::from_millis(7));
            framed.run_for(SimDuration::from_millis(7));
        }
        typed.run_for(SimDuration::from_secs(3));
        framed.run_for(SimDuration::from_secs(3));

        for q in [p(0), p(1), p(2)] {
            assert_eq!(
                typed.actor(q).unwrap().agreed(),
                framed.agreed(q).unwrap(),
                "delivery sequence of {q} differs between typed and framed runs"
            );
            let t = typed_storage.storage_for(q).unwrap();
            let f = framed_storage.storage_for(q).unwrap();
            assert_eq!(
                t.load(&keys::agreed_checkpoint()).unwrap(),
                f.load(&keys::agreed_checkpoint()).unwrap(),
                "persisted (k, Agreed) checkpoint of {q} differs"
            );
            assert_eq!(
                t.load_log(&keys::agreed_delta()).unwrap(),
                f.load_log(&keys::agreed_delta()).unwrap(),
                "persisted delta records of {q} differ"
            );
        }
        assert_eq!(framed.decode_failures(), 0);
        framed.assert_properties();
    }

    #[test]
    fn identical_seeds_yield_identical_histories() {
        let run = |seed| {
            let mut cluster = Cluster::new(ClusterConfig::basic(3).with_seed(seed));
            cluster.broadcast_spread(6, 4, SimDuration::from_millis(2));
            cluster.run_for(SimDuration::from_secs(3));
            (
                cluster.delivered(p(0)),
                cluster.delivered(p(1)),
                cluster.stats(),
            )
        };
        assert_eq!(run(9), run(9));
    }
}
