//! A small hand-rolled Rust lexer.
//!
//! The linter needs just enough token structure to match identifier/path
//! patterns without being fooled by comments and string literals, and it
//! must run in an offline build (no `syn`, no `proc-macro2`).  The lexer
//! therefore produces a flat token stream — identifiers, punctuation,
//! literals, lifetimes — each tagged with its source line, plus every `//`
//! comment keyed by line so the rule engine can find suppression and
//! justification comments.
//!
//! It understands the lexical shapes that would otherwise cause false
//! positives: nested block comments, string/byte-string literals with
//! escapes, raw strings with arbitrary `#` fences, char literals versus
//! lifetimes, and raw identifiers.

/// Classification of one token.  The rules only ever match on `Ident` and
/// `Punct`, but literals must be lexed precisely so their *contents* never
/// leak into the ident stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident,
    /// Punctuation; `::` is fused into one token, everything else is one
    /// character.
    Punct,
    /// String, byte-string, char or byte-char literal.  For string-shaped
    /// literals the token text is the literal's *contents* (escapes left
    /// as written) so the analyzer can read storage-key patterns out of
    /// `StorageKey::new("…")`; char literals keep an opaque `'…'` text.
    Literal,
    /// Numeric literal.
    Number,
    /// Lifetime or loop label (`'a`, `'stream`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// The lexer output: the token stream plus every `//` comment by line.
/// A line holding several comments (rare, but legal) concatenates them.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub comments: Vec<(u32, String)>,
}

impl LexOutput {
    fn push(&mut self, kind: TokKind, text: impl Into<String>, line: u32) {
        self.tokens.push(Token {
            kind,
            text: text.into(),
            line,
        });
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and line comments.  Unterminated literals and
/// comments are tolerated (the remainder of the file is consumed as the
/// literal): the linter must degrade gracefully on any input, it is not a
/// compiler front-end.
pub fn lex(src: &str) -> LexOutput {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if next == Some('/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                out.comments.push((line, text));
                i = j;
            }
            '/' if next == Some('*') => {
                // Nested block comments, newline-aware.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    match (chars[j], chars.get(j + 1).copied()) {
                        ('/', Some('*')) => {
                            depth += 1;
                            j += 2;
                        }
                        ('*', Some('/')) => {
                            depth -= 1;
                            j += 2;
                        }
                        ('\n', _) => {
                            line += 1;
                            j += 1;
                        }
                        _ => j += 1,
                    }
                }
                i = j;
            }
            '"' => {
                let start_line = line;
                let end = consume_string(&chars, i, &mut line);
                out.push(TokKind::Literal, string_contents(&chars, i + 1, end), start_line);
                i = end;
            }
            'r' | 'b' => {
                let start_line = line;
                if let Some((end, contents)) = try_consume_prefixed_literal(&chars, i, &mut line) {
                    out.push(TokKind::Literal, contents, start_line);
                    i = end;
                } else if c == 'r'
                    && next == Some('#')
                    && chars.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    // Raw identifier r#ident: token text is the bare name.
                    let (j, name) = consume_ident(&chars, i + 2);
                    out.push(TokKind::Ident, name, start_line);
                    i = j;
                } else {
                    let (j, name) = consume_ident(&chars, i);
                    out.push(TokKind::Ident, name, start_line);
                    i = j;
                }
            }
            '\'' => {
                let start_line = line;
                // Lifetime vs char literal: `'ident` not followed by a
                // closing quote is a lifetime/label; everything else is a
                // char literal.
                if next.is_some_and(is_ident_start) && next != Some('\\') {
                    let (j, name) = consume_ident(&chars, i + 1);
                    if chars.get(j).copied() == Some('\'') {
                        out.push(TokKind::Literal, "'…'", start_line);
                        i = j + 1;
                    } else {
                        out.push(TokKind::Lifetime, name, start_line);
                        i = j;
                    }
                } else {
                    i = consume_char_literal(&chars, i, &mut line);
                    out.push(TokKind::Literal, "'…'", start_line);
                }
            }
            c if is_ident_start(c) => {
                let (j, name) = consume_ident(&chars, i);
                out.push(TokKind::Ident, name, line);
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                out.push(TokKind::Number, text, line);
                i = j;
            }
            ':' if next == Some(':') => {
                out.push(TokKind::Punct, "::", line);
                i += 2;
            }
            other => {
                out.push(TokKind::Punct, other.to_string(), line);
                i += 1;
            }
        }
    }
    out
}

fn consume_ident(chars: &[char], start: usize) -> (usize, String) {
    let mut j = start;
    while j < chars.len() && is_ident_continue(chars[j]) {
        j += 1;
    }
    (j, chars[start..j].iter().collect())
}

/// The contents of a `"…"` literal whose opening quote sits at
/// `open_quote - 1` and whose consume ended at `end` (just past the closing
/// quote, or at EOF for an unterminated literal).
fn string_contents(chars: &[char], contents_start: usize, end: usize) -> String {
    let contents_end = if end > contents_start && chars.get(end - 1) == Some(&'"') {
        end - 1
    } else {
        end
    };
    chars[contents_start..contents_end].iter().collect()
}

/// Consumes a `"…"` literal starting at the opening quote; returns the
/// index just past the closing quote.
fn consume_string(chars: &[char], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Consumes a `'…'` char literal starting at the opening quote; returns
/// the index just past the closing quote.
fn consume_char_literal(chars: &[char], start: usize, line: &mut u32) -> usize {
    let mut j = start + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Tries to consume a `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` or `b'…'`
/// literal starting at the `r`/`b` prefix.  Returns the end index and the
/// literal's contents, or `None` when the prefix turns out to start a
/// plain identifier.
fn try_consume_prefixed_literal(
    chars: &[char],
    start: usize,
    line: &mut u32,
) -> Option<(usize, String)> {
    let mut j = start;
    let mut raw = false;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j).copied() == Some('\'') {
            return Some((consume_char_literal(chars, j, line), "'…'".to_string()));
        }
        if chars.get(j).copied() == Some('r') {
            raw = true;
            j += 1;
        }
    } else if chars[j] == 'r' {
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while chars.get(j).copied() == Some('#') {
            hashes += 1;
            j += 1;
        }
        if chars.get(j).copied() != Some('"') {
            return None; // r#ident or plain ident starting with r/br
        }
        j += 1;
        let contents_start = j;
        // Scan for `"` followed by `hashes` hash marks; no escapes in raw
        // strings.
        while j < chars.len() {
            if chars[j] == '\n' {
                *line += 1;
                j += 1;
                continue;
            }
            if chars[j] == '"' {
                let mut k = 0usize;
                while k < hashes && chars.get(j + 1 + k).copied() == Some('#') {
                    k += 1;
                }
                if k == hashes {
                    let contents: String = chars[contents_start..j].iter().collect();
                    return Some((j + 1 + hashes, contents));
                }
            }
            j += 1;
        }
        Some((j, chars[contents_start..j].iter().collect()))
    } else {
        // b"…"
        if chars.get(j).copied() != Some('"') {
            return None;
        }
        let end = consume_string(chars, j, line);
        Some((end, string_contents(chars, j + 1, end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_do_not_leak_idents() {
        let src = r##"
            // unwrap() in a comment
            /* HashMap in /* a nested */ block */
            let a = "unwrap() in a string";
            let b = r#"HashMap "quoted" raw"#;
            let c = b"fsync bytes";
            let d = 'x';
            let e: &'static str = "s";
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()));
        assert!(!ids.contains(&"fsync".to_string()));
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn comments_are_collected_by_line() {
        let src = "let x = 1; // xlint:allow(D1) — reason\nlet y = 2;\n";
        let out = lex(src);
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.comments[0].0, 1);
        assert!(out.comments[0].1.contains("xlint:allow(D1)"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) { 'outer: loop { break 'outer; } }");
        let lifetimes: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "outer", "outer"]);
    }

    #[test]
    fn double_colon_is_one_token_and_lines_track() {
        let out = lex("std::time::Instant\n::now()");
        let texts: Vec<(&str, u32)> = out
            .tokens
            .iter()
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(
            texts,
            vec![
                ("std", 1),
                ("::", 1),
                ("time", 1),
                ("::", 1),
                ("Instant", 1),
                ("::", 2),
                ("now", 2),
                ("(", 2),
                (")", 2),
            ]
        );
    }

    #[test]
    fn string_literals_keep_their_contents() {
        let out = lex("let k = \"abcast/agreed\"; let r = r#\"raw \"x\" body\"#; let b = b\"bytes\";");
        let lits: Vec<&str> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lits, vec!["abcast/agreed", "raw \"x\" body", "bytes"]);
    }

    #[test]
    fn raw_identifiers_lex_as_their_bare_name() {
        let ids = idents("let r#fn = r#type;");
        assert_eq!(ids, vec!["let", "fn", "type"]);
    }
}
