//! `cargo xtask analyze` — the semantic rule families over the item model
//! and workspace graph:
//!
//! * **L1 lock-order analysis** — builds the acquisition graph over every
//!   modelled `Mutex`/`RwLock` (fields, statics, locals): a cycle is a
//!   potential deadlock, re-acquiring a held lock is a certain one, and a
//!   lock held across blocking I/O (`sync_data`, `write_all_vectored`,
//!   `connect`, …) serialises every other user of that lock behind the
//!   device — each is a finding at the offending acquisition or call.
//! * **K1 storage-key lifecycle audit** — collects every `StorageKey`
//!   constructor in `crates/storage/src/keys.rs` plus every
//!   `keys::<ctor>(…)` use site workspace-wide and checks the lifecycle:
//!   a key never used is an orphan; a key persisted but never read on a
//!   recovery path (`on_start`/`recover*`/`*replay*`) is state lost to
//!   the next crash (the PR 7 forget-floor class); a key read but never
//!   written can only yield `None`; two constructors whose patterns
//!   unify, or one key used as both slot and log, collide in the store;
//!   and the markdown key table at the top of `keys.rs` must list exactly
//!   the constructors the module defines.
//! * **V1 volatile-twin checker** — a protocol-crate field annotated
//!   `// xanalyze:twin(<ctor>)` must persist its storage twin in the same
//!   step as every mutation: the mutating function, one of its callees or
//!   one of its callers must write `keys::<ctor>(…)`, unless the function
//!   is itself on a recovery path (restoring *from* storage).
//!
//! Findings flow through the same `xlint:allow(<RULE>) — <reason>`
//! suppression machinery as the lexical linter; each tool inventories only
//! its own rule family.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::{FnNode, Workspace};
use crate::lexer::{TokKind, Token};
use crate::model::{matching_brace, FileModel};
use crate::rules::{
    known_rule, parse_allows, Suppression, Violation, ANALYZE_RULE_IDS, PROTOCOL_CRATES,
};

/// The analyze-family rule catalogue, in reporting order.
pub const ANALYZE_RULES: [(&str, &str); 4] = [
    (
        "L1",
        "lock-order analysis: cycles in the Mutex/RwLock acquisition graph are potential \
         deadlocks, a lock re-acquired while held is a certain one, and no lock may be held \
         across blocking I/O (sync_data, write_all_vectored, connect, …)",
    ),
    (
        "K1",
        "storage-key lifecycle: every constructor in crates/storage/src/keys.rs must be used, \
         persisted state must be read back on a recovery path (on_start/recover*/replay), \
         reads need a matching write, key patterns must not unify or mix slot and log use, \
         and the module's key table must match the code",
    ),
    (
        "V1",
        "volatile-twin: a protocol-crate field annotated xanalyze:twin(<ctor>) must persist \
         its storage twin in the same step as every mutation (the mutating fn, a callee or a \
         caller writes keys::<ctor>), unless the mutation is itself a recovery restore",
    ),
    (
        "S1",
        "suppression hygiene: xlint:allow needs a known rule id and a reason; with \
         --deny-unused-allows an allow whose rule never fires on its line is itself a finding",
    ),
];

/// One analyze finding, pre-suppression.
struct Finding {
    rule: &'static str,
    file: usize,
    line: u32,
    message: String,
}

/// Runs every analyze rule over the modelled workspace and applies the
/// suppression machinery.  Returns the surviving violations plus the
/// analyze-family suppression inventory.
pub fn analyze(ws: &Workspace) -> (Vec<Violation>, Vec<Suppression>) {
    let uses = collect_key_uses(ws);
    let mut findings = Vec::new();
    findings.extend(lock_rules(ws));
    findings.extend(key_rules(ws, &uses));
    findings.extend(twin_rules(ws, &uses));
    // Dedup (loops can re-report one site) and order by source position.
    let mut seen = BTreeSet::new();
    findings.retain(|f| seen.insert((f.file, f.line, f.rule, f.message.clone())));
    findings.sort_by(|a, b| {
        (&ws.files[a.file].path, a.line, a.rule)
            .cmp(&(&ws.files[b.file].path, b.line, b.rule))
    });
    apply_suppressions(ws, findings)
}

fn apply_suppressions(ws: &Workspace, findings: Vec<Finding>) -> (Vec<Violation>, Vec<Suppression>) {
    let allows: Vec<Vec<crate::rules::ParsedAllow>> = ws
        .files
        .iter()
        .map(|f| parse_allows(&f.comments))
        .collect();
    let mut used: Vec<Vec<bool>> = allows.iter().map(|a| vec![false; a.len()]).collect();
    let mut violations = Vec::new();

    for finding in findings {
        // Semantic findings anchor at expression sites where a trailing
        // comment is often unreadable, so unlike the lexical linter an
        // allow may also sit on its own line immediately above.
        let hit = allows[finding.file].iter().position(|a| {
            (a.line == finding.line || a.line + 1 == finding.line)
                && a.rule == finding.rule
                && !a.reason.is_empty()
        });
        match hit {
            Some(idx) => used[finding.file][idx] = true,
            None => violations.push(Violation {
                rule: finding.rule,
                path: ws.files[finding.file].path.clone(),
                line: finding.line,
                message: finding.message,
            }),
        }
    }

    // Hygiene for the analyze family (the lexical linter covers its own):
    // unknown rule ids anywhere, and missing reasons on analyze allows.
    let mut suppressions = Vec::new();
    for (fi, file_allows) in allows.into_iter().enumerate() {
        let path = &ws.files[fi].path;
        for (idx, allow) in file_allows.into_iter().enumerate() {
            if !known_rule(&allow.rule) {
                violations.push(Violation {
                    rule: "S1",
                    path: path.clone(),
                    line: allow.line,
                    message: format!(
                        "xlint:allow({}) names no known rule (known: D1 D2 B1 B2 Z1 P1 S1 \
                         L1 K1 V1)",
                        allow.rule
                    ),
                });
                continue;
            }
            if !ANALYZE_RULE_IDS.contains(&allow.rule.as_str()) {
                continue;
            }
            if allow.reason.is_empty() {
                violations.push(Violation {
                    rule: "S1",
                    path: path.clone(),
                    line: allow.line,
                    message: format!(
                        "xlint:allow({}) without a reason — write `// xlint:allow({}) — <why>`",
                        allow.rule, allow.rule
                    ),
                });
            }
            suppressions.push(Suppression {
                rule: allow.rule,
                path: path.clone(),
                line: allow.line,
                reason: allow.reason,
                used: used[fi][idx],
            });
        }
    }
    violations.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    (violations, suppressions)
}

// ---------------------------------------------------------------------------
// Shared token helpers
// ---------------------------------------------------------------------------

fn ident_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn plain_ident(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens.get(i).filter(|t| t.kind == TokKind::Ident)
}

/// Index of the `)` matching the `(` at `open`; saturates at EOF.
fn matching_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// First token index of the statement containing `i` (the token after the
/// previous `;`, `{` or `}`), bounded below by `floor`.
fn statement_start(tokens: &[Token], i: usize, floor: usize) -> usize {
    let mut s = i;
    while s > floor {
        let prev = &tokens[s - 1];
        if prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ";" | "{" | "}") {
            break;
        }
        s -= 1;
    }
    s
}

/// End of the statement continuing after token `from`: the next `;` at
/// bracket depth zero, or the `}` that closes the surrounding block.
fn statement_end(tokens: &[Token], from: usize, close: usize) -> usize {
    let mut depth = 0i32;
    for (t, tok) in tokens
        .iter()
        .enumerate()
        .take(close + 1)
        .skip(from + 1)
    {
        if tok.kind != TokKind::Punct {
            continue;
        }
        match tok.text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth -= 1;
                if depth < 0 {
                    return t;
                }
            }
            ";" if depth <= 0 => return t,
            _ => {}
        }
    }
    close
}

// ---------------------------------------------------------------------------
// L1 — lock-order analysis
// ---------------------------------------------------------------------------

/// Direct calls that park the thread on a device or peer.  Transitive
/// blocking through helpers is propagated over the call graph.
const BLOCKING_CALLS: [&str; 17] = [
    "sync_data",
    "sync_all",
    "fsync",
    "write_all_vectored",
    "write_vectored",
    "write_all",
    "connect",
    "accept",
    "read_exact",
    "read_to_end",
    "recv",
    "recv_timeout",
    "sleep",
    "join",
    "wait",
    "park",
    "epoll_wait",
];

/// Guard adapters that keep the acquisition expression going
/// (`.lock().unwrap_or_else(PoisonError::into_inner)` and friends).
const GUARD_ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// One tracked lock-hold region inside a function body.
struct Hold {
    lock: String,
    line: u32,
    /// Token index of the acquiring `lock`/`read`/`write` ident.
    start: usize,
    /// Last token index at which the guard is still alive.
    release: usize,
}

/// Per-function facts feeding the cross-function propagation.
#[derive(Default)]
struct FnFacts {
    /// Locks acquired anywhere in the body.
    acquires: BTreeSet<String>,
    /// First direct blocking call in the body, if any: `(name, line)`.
    blocking: Option<(String, u32)>,
}

fn lock_rules(ws: &Workspace) -> Vec<Finding> {
    // Pass 1: per-function holds and facts.
    let mut holds: BTreeMap<FnNode, Vec<Hold>> = BTreeMap::new();
    let mut facts: BTreeMap<FnNode, FnFacts> = BTreeMap::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if f.in_test {
                continue;
            }
            let Some(body) = f.body else { continue };
            let fn_holds = compute_holds(file, body);
            let mut fact = FnFacts {
                acquires: fn_holds.iter().map(|h| h.lock.clone()).collect(),
                blocking: None,
            };
            for t in body.0..=body.1.min(file.tokens.len().saturating_sub(1)) {
                if file.mask.get(t).copied().unwrap_or(false) {
                    continue;
                }
                if is_blocking_call(&file.tokens, t) {
                    fact.blocking = Some((file.tokens[t].text.clone(), file.tokens[t].line));
                    break;
                }
            }
            holds.insert((fi, ni), fn_holds);
            facts.insert((fi, ni), fact);
        }
    }

    // Transitive facts over the call graph, memoized per node.
    let mut trans_memo: BTreeMap<FnNode, (BTreeSet<String>, Option<String>)> = BTreeMap::new();
    let mut trans = |node: FnNode, ws: &Workspace| -> (BTreeSet<String>, Option<String>) {
        if let Some(hit) = trans_memo.get(&node) {
            return hit.clone();
        }
        let mut acquires = BTreeSet::new();
        let mut blocking = None;
        for n in ws.callee_closure(node) {
            if let Some(fact) = facts.get(&n) {
                acquires.extend(fact.acquires.iter().cloned());
                if blocking.is_none() {
                    if let Some((what, _)) = &fact.blocking {
                        blocking = Some(format!("{} in {}", what, ws.describe(n)));
                    }
                }
            }
        }
        trans_memo.insert(node, (acquires.clone(), blocking.clone()));
        (acquires, blocking)
    };

    // Pass 2: findings at each hold, plus the global acquisition graph.
    let mut findings = Vec::new();
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for (&(fi, ni), fn_holds) in &holds {
        let file = &ws.files[fi];
        let f = &file.fns[ni];
        for hold in fn_holds {
            // Nested direct acquisitions while held.
            for other in fn_holds {
                if other.start > hold.start && other.start <= hold.release {
                    if other.lock == hold.lock {
                        findings.push(Finding {
                            rule: "L1",
                            file: fi,
                            line: other.line,
                            message: format!(
                                "lock `{}` (held since line {}) is acquired again here — \
                                 Mutex/RwLock are not reentrant, this self-deadlocks",
                                hold.lock, hold.line
                            ),
                        });
                    } else {
                        edges
                            .entry((hold.lock.clone(), other.lock.clone()))
                            .or_insert((fi, other.line));
                    }
                }
            }
            // Blocking while held: report the first offending site per
            // hold (one finding per design decision, not per call site).
            let mut block_events: Vec<(usize, Finding)> = Vec::new();
            for t in hold.start + 1..=hold.release.min(file.tokens.len().saturating_sub(1)) {
                if is_blocking_call(&file.tokens, t) {
                    block_events.push((
                        t,
                        Finding {
                            rule: "L1",
                            file: fi,
                            line: file.tokens[t].line,
                            message: format!(
                                "lock `{}` (acquired line {}) is held across blocking `{}` — \
                                 every other user of the lock now waits on the device",
                                hold.lock, hold.line, file.tokens[t].text
                            ),
                        },
                    ));
                }
            }
            // Calls while held: propagate acquisitions and blocking.
            for call in &f.calls {
                if call.tok <= hold.start || call.tok > hold.release {
                    continue;
                }
                for target in ws.resolve(fi, call) {
                    let (acquires, blocking) = trans(target, ws);
                    for other in &acquires {
                        if *other == hold.lock {
                            findings.push(Finding {
                                rule: "L1",
                                file: fi,
                                line: call.line,
                                message: format!(
                                    "lock `{}` (held since line {}) is re-acquired inside \
                                     `{}` called here — self-deadlock",
                                    hold.lock, hold.line, call.name
                                ),
                            });
                        } else {
                            edges
                                .entry((hold.lock.clone(), other.clone()))
                                .or_insert((fi, call.line));
                        }
                    }
                    if let Some(what) = &blocking {
                        block_events.push((
                            call.tok,
                            Finding {
                                rule: "L1",
                                file: fi,
                                line: call.line,
                                message: format!(
                                    "lock `{}` (acquired line {}) is held across `{}`, which \
                                     reaches blocking {}",
                                    hold.lock, hold.line, call.name, what
                                ),
                            },
                        ));
                    }
                }
            }
            if let Some((_, finding)) = block_events.into_iter().min_by_key(|(t, _)| *t) {
                findings.push(finding);
            }
        }
    }

    findings.extend(report_cycles(ws, &edges));
    findings
}

/// `.name(` or `Path::name(` where `name` parks the thread.  `join` only
/// counts in its zero-argument thread form — `Path::join(component)`
/// takes an argument and is pure.
fn is_blocking_call(tokens: &[Token], t: usize) -> bool {
    tokens[t].kind == TokKind::Ident
        && BLOCKING_CALLS.contains(&tokens[t].text.as_str())
        && punct_at(tokens, t + 1, "(")
        && (tokens[t].text != "join" || punct_at(tokens, t + 2, ")"))
        && t > 0
        && tokens[t - 1].kind == TokKind::Punct
        && matches!(tokens[t - 1].text.as_str(), "." | "::")
}

/// Finds every lock acquisition in the body and how long its guard lives.
fn compute_holds(file: &FileModel, body: (usize, usize)) -> Vec<Hold> {
    let (open, close) = body;
    let tokens = &file.tokens;
    let close = close.min(tokens.len().saturating_sub(1));
    // Innermost enclosing `{` for every body token, for guard scopes.
    let mut enclose = vec![open; close + 1 - open];
    let mut stack = vec![open];
    for t in open..=close {
        if punct_at(tokens, t, "{") {
            stack.push(t);
        }
        enclose[t - open] = *stack.last().unwrap_or(&open);
        if punct_at(tokens, t, "}") {
            stack.pop();
            if stack.is_empty() {
                stack.push(open);
            }
        }
    }

    let mut holds = Vec::new();
    for i in open..close {
        if !(tokens[i].kind == TokKind::Ident
            && matches!(tokens[i].text.as_str(), "lock" | "read" | "write")
            && punct_at(tokens, i + 1, "(")
            && punct_at(tokens, i + 2, ")")
            && punct_at(tokens, i.wrapping_sub(1), "."))
        {
            continue;
        }
        if file.mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some(recv) = i.checked_sub(2).and_then(|r| plain_ident(tokens, r)) else {
            continue;
        };
        if !file.locks.contains(&recv.text) {
            continue;
        }
        // Ride out guard adapters: `.lock().unwrap_or_else(…)` etc.
        let mut chain_end = matching_paren(tokens, i + 1);
        loop {
            if punct_at(tokens, chain_end + 1, ".")
                && plain_ident(tokens, chain_end + 2)
                    .is_some_and(|t| GUARD_ADAPTERS.contains(&t.text.as_str()))
                && punct_at(tokens, chain_end + 3, "(")
            {
                chain_end = matching_paren(tokens, chain_end + 3);
            } else {
                break;
            }
        }
        let stmt = statement_start(tokens, i, open);
        // A `let` binds the guard only when the lock chain IS the whole
        // initializer (`let g = self.x.lock();`); when the lock expression
        // is nested deeper (`let v = mem::take(&mut *self.x.lock());`)
        // the guard is a temporary that dies with the statement.
        let binds_whole_initializer = punct_at(tokens, chain_end + 1, ";");
        let release = if ident_at(tokens, stmt, "let") && binds_whole_initializer {
            let mut n = stmt + 1;
            if ident_at(tokens, n, "mut") {
                n += 1;
            }
            match plain_ident(tokens, n) {
                // `let _ = …` drops the guard at the end of the statement.
                Some(binding) if binding.text != "_" => {
                    let name = binding.text.clone();
                    let scope_close = matching_brace(tokens, enclose[stmt - open]).min(close);
                    let mut release = scope_close;
                    for t in chain_end + 1..scope_close {
                        if ident_at(tokens, t, "drop")
                            && punct_at(tokens, t + 1, "(")
                            && ident_at(tokens, t + 2, &name)
                            && punct_at(tokens, t + 3, ")")
                        {
                            release = t + 3;
                            break;
                        }
                    }
                    release
                }
                _ => statement_end(tokens, chain_end, close),
            }
        } else {
            // A temporary guard lives to the end of its statement.
            statement_end(tokens, chain_end, close)
        };
        holds.push(Hold {
            lock: format!("{}::{}", file.stem(), recv.text),
            line: tokens[i].line,
            start: i,
            release,
        });
    }
    holds
}

/// Detects cycles in the acquisition graph and reports each once, at its
/// lexicographically first edge site.
fn report_cycles(
    ws: &Workspace,
    edges: &BTreeMap<(String, String), (usize, u32)>,
) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().insert(b.as_str());
    }
    let mut findings = Vec::new();
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for ((a, b), &(file, line)) in edges {
        // A cycle through this edge exists iff `b` reaches `a`.
        let Some(path) = bfs_path(&adj, b.as_str(), a.as_str()) else {
            continue;
        };
        // Cycle nodes in order: a → b → … → a (`path` runs from b's
        // successors through a, so drop its final `a` and keep the rest).
        let mut cycle: Vec<String> = Vec::with_capacity(path.len() + 1);
        cycle.push(a.clone());
        cycle.push(b.clone());
        cycle.extend(
            path.iter()
                .take(path.len().saturating_sub(1))
                .map(|s| s.to_string()),
        );
        // Canonical rotation so each cycle is reported exactly once.
        let min_at = cycle
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.as_str())
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut canonical = cycle.clone();
        canonical.rotate_left(min_at);
        if !reported.insert(canonical) {
            continue;
        }
        let mut route = cycle.join(" → ");
        route.push_str(" → ");
        route.push_str(&cycle[0]);
        let mut sites = Vec::new();
        for w in 0..cycle.len() {
            let from = &cycle[w];
            let to = &cycle[(w + 1) % cycle.len()];
            if let Some((sf, sl)) = edges.get(&(from.clone(), to.clone())) {
                sites.push(format!("{}→{} at {}:{}", from, to, ws.files[*sf].path, sl));
            }
        }
        findings.push(Finding {
            rule: "L1",
            file,
            line,
            message: format!(
                "lock-order cycle (potential deadlock): {} ({})",
                route,
                sites.join(", ")
            ),
        });
    }
    findings
}

/// Shortest path `from → to` (inclusive of both ends, excluding `from`
/// itself in the returned list); deterministic over the BTree ordering.
fn bfs_path<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    let mut seen: BTreeSet<&str> = BTreeSet::from([from]);
    while let Some(n) = queue.pop_front() {
        if n == to {
            let mut path = vec![n];
            let mut cur = n;
            while let Some(&p) = parent.get(cur) {
                path.push(p);
                cur = p;
            }
            path.pop(); // drop `from`
            path.reverse();
            return Some(path);
        }
        for next in adj.get(n).into_iter().flatten() {
            if seen.insert(next) {
                parent.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// K1 — storage-key lifecycle
// ---------------------------------------------------------------------------

/// One segment of a key pattern; `Wild` covers `{k}` format holes and
/// `<k>` doc-table placeholders.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Seg {
    Lit(String),
    Wild,
}

fn parse_segments(pattern: &str) -> Vec<Seg> {
    pattern
        .split('/')
        .map(|s| {
            if s.contains('{') || s.starts_with('<') {
                Seg::Wild
            } else {
                Seg::Lit(s.to_string())
            }
        })
        .collect()
}

fn render_segments(segs: &[Seg]) -> String {
    segs.iter()
        .map(|s| match s {
            Seg::Lit(text) => text.as_str(),
            Seg::Wild => "<k>",
        })
        .collect::<Vec<_>>()
        .join("/")
}

/// `true` when two whole keys can name the same record: equal length and
/// every position unifies.  A wildcard stands for a formatted round
/// number, so it unifies with another wildcard or an all-digit literal.
fn unifies(a: &[Seg], b: &[Seg]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Seg::Lit(l), Seg::Lit(r)) => l == r,
            (Seg::Wild, Seg::Wild) => true,
            (Seg::Wild, Seg::Lit(l)) | (Seg::Lit(l), Seg::Wild) => {
                !l.is_empty() && l.bytes().all(|c| c.is_ascii_digit())
            }
        })
}

/// One key constructor defined in `keys.rs`.
struct KeyCtor {
    name: String,
    line: u32,
    segs: Vec<Seg>,
}

/// How one use site touches a key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OpClass {
    SlotWrite,
    SlotRead,
    LogWrite,
    LogRead,
    Remove,
    /// Passed somewhere the classifier cannot see through (e.g. a
    /// `SetLogger` constructor): exempts the key from lifecycle claims.
    Opaque,
}

fn classify_op(name: &str) -> Option<OpClass> {
    match name {
        "store" | "store_payload" | "store_value" => Some(OpClass::SlotWrite),
        "load" | "load_value" => Some(OpClass::SlotRead),
        "append" | "append_payload" | "append_value" => Some(OpClass::LogWrite),
        "load_log" | "load_log_values" => Some(OpClass::LogRead),
        "remove" => Some(OpClass::Remove),
        _ => None,
    }
}

/// One `keys::<ctor>(…)` use site.
struct KeyUse {
    ctor: String,
    class: OpClass,
    file: usize,
    line: u32,
    node: Option<FnNode>,
}

/// The keys module, if the workspace has one.
fn keys_file(ws: &Workspace) -> Option<usize> {
    ws.files
        .iter()
        .position(|f| f.krate == "storage" && f.path.ends_with("src/keys.rs"))
}

/// Every constructor in the keys module: a non-test fn whose body builds
/// a `StorageKey::new(<literal or format literal>)`.
fn collect_ctors(ws: &Workspace) -> Vec<KeyCtor> {
    let Some(kf) = keys_file(ws) else {
        return Vec::new();
    };
    let file = &ws.files[kf];
    let mut ctors = Vec::new();
    for f in &file.fns {
        if f.in_test {
            continue;
        }
        let Some((open, close)) = f.body else { continue };
        for i in open..close.min(file.tokens.len().saturating_sub(1)) {
            if !(ident_at(&file.tokens, i, "StorageKey")
                && punct_at(&file.tokens, i + 1, "::")
                && ident_at(&file.tokens, i + 2, "new")
                && punct_at(&file.tokens, i + 3, "("))
            {
                continue;
            }
            let end = matching_paren(&file.tokens, i + 3);
            if let Some(lit) = file.tokens[i + 4..end.max(i + 4)]
                .iter()
                .find(|t| t.kind == TokKind::Literal)
            {
                ctors.push(KeyCtor {
                    name: f.name.clone(),
                    line: f.line,
                    segs: parse_segments(&lit.text),
                });
            }
            break;
        }
    }
    ctors
}

/// Every production `keys::<name>(…)` site workspace-wide, classified by
/// the storage verb the key flows into within the same statement.
fn collect_key_uses(ws: &Workspace) -> Vec<KeyUse> {
    let mut uses = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        for i in 0..file.tokens.len() {
            if !(ident_at(&file.tokens, i, "keys")
                && punct_at(&file.tokens, i + 1, "::")
                && plain_ident(&file.tokens, i + 2).is_some()
                && punct_at(&file.tokens, i + 3, "("))
            {
                continue;
            }
            if file.mask.get(i).copied().unwrap_or(false) {
                continue;
            }
            let ctor = file.tokens[i + 2].text.clone();
            let stmt = statement_start(&file.tokens, i, 0);
            let mut class = OpClass::Opaque;
            for t in (stmt..i).rev() {
                let tok = &file.tokens[t];
                if tok.kind != TokKind::Ident {
                    continue;
                }
                let call_shaped = punct_at(&file.tokens, t + 1, "(")
                    || (punct_at(&file.tokens, t + 1, "::") && punct_at(&file.tokens, t + 2, "<"));
                if !call_shaped {
                    continue;
                }
                if let Some(found) = classify_op(&tok.text) {
                    class = found;
                    break;
                }
            }
            uses.push(KeyUse {
                ctor,
                class,
                file: fi,
                line: file.tokens[i].line,
                node: file.enclosing_fn(i).map(|ni| (fi, ni)),
            });
        }
    }
    uses
}

fn key_rules(ws: &Workspace, uses: &[KeyUse]) -> Vec<Finding> {
    let Some(kf) = keys_file(ws) else {
        return Vec::new();
    };
    let ctors = collect_ctors(ws);
    let mut findings = Vec::new();

    // Doc-table drift, both directions.
    let table = parse_key_table(&ws.files[kf].comments);
    for (line, raw, segs) in &table {
        if !ctors.iter().any(|c| c.segs == *segs) {
            findings.push(Finding {
                rule: "K1",
                file: kf,
                line: *line,
                message: format!(
                    "the key table lists `{}` but keys.rs defines no constructor for it — \
                     remove the stale row or add the constructor",
                    raw
                ),
            });
        }
    }
    for ctor in &ctors {
        if !table.iter().any(|(_, _, segs)| *segs == ctor.segs) {
            findings.push(Finding {
                rule: "K1",
                file: kf,
                line: ctor.line,
                message: format!(
                    "constructor `{}` builds `{}` but the key table at the top of keys.rs \
                     does not list it",
                    ctor.name,
                    render_segments(&ctor.segs)
                ),
            });
        }
    }

    // Pattern collisions: two constructors that can name the same record.
    for (i, a) in ctors.iter().enumerate() {
        for b in ctors.iter().skip(i + 1) {
            if unifies(&a.segs, &b.segs) {
                findings.push(Finding {
                    rule: "K1",
                    file: kf,
                    line: a.line.max(b.line),
                    message: format!(
                        "key patterns `{}` ({}) and `{}` ({}) can name the same record — \
                         records will silently overwrite each other",
                        render_segments(&a.segs),
                        a.name,
                        render_segments(&b.segs),
                        b.name
                    ),
                });
            }
        }
    }

    // Lifecycle per constructor.
    let recovery = ws.recovery_reachable();
    for ctor in &ctors {
        let key_uses: Vec<&KeyUse> = uses.iter().filter(|u| u.ctor == ctor.name).collect();
        if key_uses.is_empty() {
            findings.push(Finding {
                rule: "K1",
                file: kf,
                line: ctor.line,
                message: format!(
                    "key `{}` (keys::{}) is constructed but never used anywhere in the \
                     workspace — dead storage vocabulary",
                    render_segments(&ctor.segs),
                    ctor.name
                ),
            });
            continue;
        }
        if key_uses.iter().any(|u| u.class == OpClass::Opaque) {
            // The key escapes into code the classifier cannot follow; no
            // lifecycle claim is sound.
            continue;
        }
        let writes: Vec<&&KeyUse> = key_uses
            .iter()
            .filter(|u| matches!(u.class, OpClass::SlotWrite | OpClass::LogWrite))
            .collect();
        let reads: Vec<&&KeyUse> = key_uses
            .iter()
            .filter(|u| matches!(u.class, OpClass::SlotRead | OpClass::LogRead))
            .collect();
        if !writes.is_empty() {
            let restored = reads
                .iter()
                .any(|u| u.node.is_some_and(|n| recovery.contains(&n)));
            if !restored {
                let w = writes[0];
                findings.push(Finding {
                    rule: "K1",
                    file: w.file,
                    line: w.line,
                    message: format!(
                        "keys::{} is persisted here but no recovery path \
                         (on_start/recover*/replay) ever reads it back — this durable state \
                         is lost to the next crash{}",
                        ctor.name,
                        if reads.is_empty() {
                            ""
                        } else {
                            " (its only reads are outside recovery)"
                        }
                    ),
                });
            }
        } else if !reads.is_empty() {
            let r = reads[0];
            findings.push(Finding {
                rule: "K1",
                file: r.file,
                line: r.line,
                message: format!(
                    "keys::{} is read here but never persisted anywhere — the read can only \
                     ever observe an absent record",
                    ctor.name
                ),
            });
        }
        let slotty = key_uses
            .iter()
            .any(|u| matches!(u.class, OpClass::SlotWrite | OpClass::SlotRead));
        let loggy: Option<&&KeyUse> = key_uses
            .iter()
            .find(|u| matches!(u.class, OpClass::LogWrite | OpClass::LogRead));
        if let (true, Some(l)) = (slotty, loggy) {
            findings.push(Finding {
                rule: "K1",
                file: l.file,
                line: l.line,
                message: format!(
                    "keys::{} is used both as a slot (store/load) and as a log \
                     (append/load_log) — the two namespaces collide on one key",
                    ctor.name
                ),
            });
        }
    }
    findings
}

/// Rows of the markdown key table in the module doc comment: lines shaped
/// `//! | `<key>` | … |`.  Returns `(line, raw key, parsed segments)`.
fn parse_key_table(comments: &[(u32, String)]) -> Vec<(u32, String, Vec<Seg>)> {
    let mut rows = Vec::new();
    for (line, text) in comments {
        let t = text.trim_start_matches('!').trim();
        if !t.starts_with('|') {
            continue;
        }
        let Some(open) = t.find('`') else { continue };
        let rest = &t[open + 1..];
        let Some(close) = rest.find('`') else { continue };
        let raw = &rest[..close];
        if !raw.contains('/') {
            continue;
        }
        rows.push((*line, raw.to_string(), parse_segments(raw)));
    }
    rows
}

// ---------------------------------------------------------------------------
// V1 — volatile-twin checker
// ---------------------------------------------------------------------------

/// Methods that mutate a field in place.
const MUTATING_METHODS: [&str; 13] = [
    "insert", "remove", "push", "pop", "clear", "retain", "extend", "append", "drain", "take",
    "replace", "push_back", "pop_front",
];

fn twin_rules(ws: &Workspace, uses: &[KeyUse]) -> Vec<Finding> {
    let ctors = collect_ctors(ws);
    let have_keys_file = keys_file(ws).is_some();

    // Which functions write (or remove) / read which key, from the
    // classified use sites.
    let mut writers: BTreeMap<&str, BTreeSet<FnNode>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, BTreeSet<FnNode>> = BTreeMap::new();
    for u in uses {
        let Some(node) = u.node else { continue };
        match u.class {
            OpClass::SlotWrite | OpClass::LogWrite | OpClass::Remove => {
                writers.entry(u.ctor.as_str()).or_default().insert(node);
            }
            OpClass::SlotRead | OpClass::LogRead => {
                readers.entry(u.ctor.as_str()).or_default().insert(node);
            }
            OpClass::Opaque => {}
        }
    }

    let mut findings = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if !PROTOCOL_CRATES.contains(&file.krate.as_str()) {
            continue;
        }
        for field in &file.fields {
            let Some(twin) = &field.twin else { continue };
            if have_keys_file && !ctors.iter().any(|c| &c.name == twin) {
                findings.push(Finding {
                    rule: "V1",
                    file: fi,
                    line: field.line,
                    message: format!(
                        "xanalyze:twin({}) names no key constructor in \
                         crates/storage/src/keys.rs",
                        twin
                    ),
                });
                continue;
            }
            let twin_writers = writers.get(twin.as_str());
            let twin_readers = readers.get(twin.as_str());
            for (ni, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                let Some(body) = f.body else { continue };
                let node = (fi, ni);
                for line in find_mutations(file, body, &field.name) {
                    // A restore: a recovery root by name, or a function
                    // that itself reads the twin back from storage.
                    // (Deliberately NOT graph reachability from recovery
                    // roots — the sparse graph over-approximates it, and
                    // an over-wide exemption would hide exactly the
                    // forgotten-write bugs this rule exists to catch.)
                    let restoring = crate::graph::is_recovery_name(&f.name)
                        || twin_readers.is_some_and(|r| r.contains(&node));
                    if restoring {
                        continue;
                    }
                    let on_write_path = twin_writers.is_some_and(|w| {
                        w.contains(&node)
                            || ws.callee_closure(node).iter().any(|n| w.contains(n))
                            || ws.caller_closure(node).iter().any(|n| w.contains(n))
                    });
                    if !on_write_path {
                        findings.push(Finding {
                            rule: "V1",
                            file: fi,
                            line,
                            message: format!(
                                "volatile field `{}.{}` is mutated here but nothing on this \
                                 step's path (this fn, its callees or its callers) writes its \
                                 storage twin keys::{} — the field silently diverges from \
                                 durable state after a crash",
                                field.struct_name, field.name, twin
                            ),
                        });
                    }
                }
            }
        }
    }
    findings
}

/// Source lines inside `body` where `<recv>.<field>` is assigned,
/// compound-assigned or mutated through a mutating method.
fn find_mutations(file: &FileModel, body: (usize, usize), field: &str) -> Vec<u32> {
    let tokens = &file.tokens;
    let (open, close) = body;
    let mut lines = Vec::new();
    for i in open..=close.min(tokens.len().saturating_sub(1)) {
        if !(ident_at(tokens, i, field)
            && punct_at(tokens, i.wrapping_sub(1), ".")
            && i >= 2
            && plain_ident(tokens, i - 2).is_some())
        {
            continue;
        }
        if file.mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let assigned = punct_at(tokens, i + 1, "=") && !punct_at(tokens, i + 2, "=");
        let compound = tokens.get(i + 1).is_some_and(|t| {
            t.kind == TokKind::Punct
                && matches!(t.text.as_str(), "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^")
        }) && punct_at(tokens, i + 2, "=")
            && !punct_at(tokens, i + 3, "=");
        let mutated_via_method = punct_at(tokens, i + 1, ".")
            && plain_ident(tokens, i + 2)
                .is_some_and(|t| MUTATING_METHODS.contains(&t.text.as_str()))
            && punct_at(tokens, i + 3, "(");
        if assigned || compound || mutated_via_method {
            lines.push(tokens[i].line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_parse_and_unify() {
        let promised = parse_segments("consensus/{k}/promised");
        let table = parse_segments("consensus/<k>/promised");
        let floor = parse_segments("consensus/floor");
        let literal_round = parse_segments("consensus/7/promised");
        assert_eq!(promised, table);
        assert!(unifies(&promised, &table));
        assert!(unifies(&promised, &literal_round));
        assert!(!unifies(&promised, &floor));
        assert!(!unifies(
            &parse_segments("abcast/agreed"),
            &parse_segments("abcast/agreed/delta")
        ));
        assert_eq!(render_segments(&promised), "consensus/<k>/promised");
    }

    #[test]
    fn key_table_rows_parse_from_doc_comments() {
        let comments = vec![
            (9, "! | Key | Kind | Written by |".to_string()),
            (10, "! |-----|------|-----------|".to_string()),
            (11, "! | `abcast/agreed` | slot | checkpoint |".to_string()),
            (12, "! | `consensus/<k>/promised` | slot | acceptor |".to_string()),
            (20, " not a table row".to_string()),
        ];
        let rows = parse_key_table(&comments);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].1, "abcast/agreed");
        assert_eq!(rows[1].2, parse_segments("consensus/{k}/promised"));
    }

    #[test]
    fn op_classification_covers_the_storage_vocabulary() {
        assert_eq!(classify_op("store_value"), Some(OpClass::SlotWrite));
        assert_eq!(classify_op("load"), Some(OpClass::SlotRead));
        assert_eq!(classify_op("append_payload"), Some(OpClass::LogWrite));
        assert_eq!(classify_op("load_log_values"), Some(OpClass::LogRead));
        assert_eq!(classify_op("remove"), Some(OpClass::Remove));
        assert_eq!(classify_op("new"), None);
    }
}
