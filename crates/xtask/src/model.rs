//! Per-file item model: the semantic layer between the token stream and
//! the cross-file analysis rules.
//!
//! The lexer gives a flat token stream; `cargo xtask analyze` needs just
//! enough *structure* to reason across files — which function a token
//! belongs to, which type an `impl` block extends, which struct fields
//! exist and which of them are lock slots, and which functions a body
//! calls.  [`FileModel::build`] recovers that structure with a
//! brace-matching scan (no `syn`, the environment is offline).  It is an
//! approximation by design: item boundaries and call references are
//! recovered reliably for the idiomatic-Rust shapes this workspace uses,
//! and the analysis rules built on top degrade towards silence (not
//! towards false findings) when a shape is not recognised.
//!
//! Two source annotations are read here:
//!
//! * `// xanalyze:twin(<key_fn>)` on a struct-field declaration line marks
//!   the field as the volatile twin of the storage key built by
//!   `keys::<key_fn>()` — input to the V1 volatile-twin checker;
//! * lock slots need no annotation: any field, static or local whose type
//!   or initialiser names `Mutex`/`RwLock` is modelled as a lock.

use std::collections::BTreeSet;

use crate::lexer::{lex, TokKind, Token};
use crate::rules::test_mask;

/// One function item (free function or method).
#[derive(Debug)]
pub struct FnItem {
    /// Bare function name (`on_start`, `commit_batch`, …).
    pub name: String,
    /// The `impl` self type this function is a method of, if any.
    pub self_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body: indices of the opening and closing braces
    /// (inclusive).  `None` for bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// `true` when the function sits inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Call references inside the body, in source order.
    pub calls: Vec<CallSite>,
}

/// One call reference (`name(…)`, `recv.name(…)` or `Qual::name(…)`).
#[derive(Debug)]
pub struct CallSite {
    /// The called name.
    pub name: String,
    /// Token index of the name identifier.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// `true` for method calls (`.name(…)`).
    pub method: bool,
    /// The receiver identifier (`self`, a variable) for method calls, or
    /// the path qualifier (`Type::name`) for qualified calls.
    pub qualifier: Option<String>,
}

/// One named struct field.
#[derive(Debug)]
pub struct FieldItem {
    /// The struct the field belongs to.
    pub struct_name: String,
    pub name: String,
    /// 1-based line of the field declaration.
    pub line: u32,
    /// `true` when the field type names `Mutex` or `RwLock`.
    pub is_lock: bool,
    /// Storage-key function named by an `xanalyze:twin(…)` annotation.
    pub twin: Option<String>,
}

/// The item model of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Owning crate (`core`, `storage`, …; `root` for the facade).
    pub krate: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<(u32, String)>,
    /// Per-token `#[cfg(test)]` mask (same policy as the linter).
    pub mask: Vec<bool>,
    pub fns: Vec<FnItem>,
    pub fields: Vec<FieldItem>,
    /// Names of lock slots declared in this file (fields, statics and
    /// `let`-bound `Mutex::new`/`RwLock::new` locals).
    pub locks: BTreeSet<String>,
}

impl FileModel {
    /// Builds the model of `src` as if it lived at `path` in crate
    /// `krate`.
    pub fn build(path: &str, krate: &str, src: &str) -> FileModel {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let tokens = lexed.tokens;
        let impls = collect_impls(&tokens);
        let mut fns = collect_fns(&tokens, &impls, &mask);
        let (fields, field_locks) = collect_fields(&tokens, &lexed.comments);
        let mut locks: BTreeSet<String> = field_locks;
        locks.extend(collect_static_locks(&tokens));
        for f in &mut fns {
            if let Some((open, close)) = f.body {
                locks.extend(collect_local_locks(&tokens, open, close));
                f.calls = collect_calls(&tokens, open, close);
            }
        }
        FileModel {
            path: path.to_string(),
            krate: krate.to_string(),
            tokens,
            comments: lexed.comments,
            mask,
            fns,
            fields,
            locks,
        }
    }

    /// Short stem of the file name (`tcp` for `crates/net/src/tcp.rs`),
    /// used to qualify lock identities.
    pub fn stem(&self) -> &str {
        self.path
            .rsplit('/')
            .next()
            .unwrap_or(&self.path)
            .trim_end_matches(".rs")
    }

    /// The function whose body contains token index `tok`, if any.
    /// Prefers the innermost (last-starting) enclosing body, so helper
    /// functions nested in test modules resolve correctly.
    pub fn enclosing_fn(&self, tok: usize) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, f) in self.fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if open <= tok && tok <= close {
                    let better = match best {
                        None => true,
                        Some(b) => self.fns[b].body.is_some_and(|(bo, _)| open > bo),
                    };
                    if better {
                        best = Some(i);
                    }
                }
            }
        }
        best
    }
}

fn ident_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

fn is_ident(tokens: &[Token], i: usize) -> bool {
    tokens.get(i).is_some_and(|t| t.kind == TokKind::Ident)
}

/// Index of the `}` matching the `{` at `open`; saturates at EOF for
/// unbalanced input.
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// `true` when token `i` can open a top-level item (`impl`, `struct`):
/// the previous token ends an item or attribute, or opens a module block.
fn item_position(tokens: &[Token], i: usize) -> bool {
    match i.checked_sub(1).and_then(|p| tokens.get(p)) {
        None => true,
        Some(prev) => match prev.kind {
            // A `)` can close a restricted visibility (`pub(crate)`,
            // `pub(super)`, …): walk back over the group and require the
            // `pub` in front of it, so `pub(crate) struct` declares items
            // but `fn f() -> T` positions never do.
            TokKind::Punct if prev.text == ")" => {
                let mut depth = 0i32;
                let mut p = i - 1;
                loop {
                    match tokens.get(p) {
                        Some(t) if t.kind == TokKind::Punct && t.text == ")" => depth += 1,
                        Some(t) if t.kind == TokKind::Punct && t.text == "(" => {
                            depth -= 1;
                            if depth == 0 {
                                return p
                                    .checked_sub(1)
                                    .and_then(|q| tokens.get(q))
                                    .is_some_and(|t| {
                                        t.kind == TokKind::Ident && t.text == "pub"
                                    });
                            }
                        }
                        _ => {}
                    }
                    if p == 0 {
                        return false;
                    }
                    p -= 1;
                }
            }
            TokKind::Punct => matches!(prev.text.as_str(), "}" | ";" | "]" | "{"),
            TokKind::Ident => matches!(prev.text.as_str(), "pub" | "unsafe"),
            _ => false,
        },
    }
}

/// `(body_open, body_close, self_type)` of every `impl` block.
fn collect_impls(tokens: &[Token]) -> Vec<(usize, usize, String)> {
    let mut impls = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if ident_at(tokens, i, "impl") && item_position(tokens, i) {
            let mut name: Option<String> = None;
            let mut angle = 0i32;
            let mut j = i + 1;
            while j < tokens.len() {
                let t = &tokens[j];
                match (t.kind, t.text.as_str()) {
                    (TokKind::Punct, "<") => angle += 1,
                    (TokKind::Punct, ">") => angle -= 1,
                    (TokKind::Punct, "{") if angle <= 0 => break,
                    (TokKind::Punct, ";") => break,
                    (TokKind::Ident, "for") if angle <= 0 => name = None,
                    (TokKind::Ident, "where") if angle <= 0 => {
                        // Skip the clause; the body brace follows it.
                        while j + 1 < tokens.len() && !punct_at(tokens, j + 1, "{") {
                            j += 1;
                        }
                    }
                    (TokKind::Ident, "dyn" | "const" | "unsafe") => {}
                    (TokKind::Ident, _) if angle <= 0 && name.is_none() => {
                        name = Some(t.text.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            if punct_at(tokens, j, "{") {
                let close = matching_brace(tokens, j);
                if let Some(name) = name {
                    impls.push((j, close, name));
                }
                // Items inside the impl are visited by the fn scan; the
                // impl scan itself continues past the header only.
            }
            i = j.max(i + 1);
        } else {
            i += 1;
        }
    }
    impls
}

fn collect_fns(
    tokens: &[Token],
    impls: &[(usize, usize, String)],
    mask: &[bool],
) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if ident_at(tokens, i, "fn") && is_ident(tokens, i + 1) {
            let name = tokens[i + 1].text.clone();
            let line = tokens[i].line;
            // The body opens at the first `{` after the signature; a `;`
            // first means a bodiless trait-method declaration.
            let mut j = i + 2;
            let mut body = None;
            while j < tokens.len() {
                if punct_at(tokens, j, ";") {
                    break;
                }
                if punct_at(tokens, j, "{") {
                    body = Some((j, matching_brace(tokens, j)));
                    break;
                }
                j += 1;
            }
            let self_type = impls
                .iter()
                .find(|(open, close, _)| *open < i && i < *close)
                .map(|(_, _, name)| name.clone());
            fns.push(FnItem {
                name,
                self_type,
                line,
                body,
                in_test: mask.get(i).copied().unwrap_or(false),
                calls: Vec::new(),
            });
            // Continue *inside* the body too: nested test helpers and
            // closures still declare `fn` items worth modelling.
            i += 2;
        } else {
            i += 1;
        }
    }
    fns
}

/// Parses `struct Name { … }` fields.  Returns the fields plus the names
/// of lock-typed ones (the file's lock vocabulary).
fn collect_fields(
    tokens: &[Token],
    comments: &[(u32, String)],
) -> (Vec<FieldItem>, BTreeSet<String>) {
    let mut fields = Vec::new();
    let mut locks = BTreeSet::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(ident_at(tokens, i, "struct") && is_ident(tokens, i + 1) && item_position(tokens, i)) {
            i += 1;
            continue;
        }
        let struct_name = tokens[i + 1].text.clone();
        // Find the field braces (skipping generics); `(` or `;` means a
        // tuple or unit struct — no named fields to model.
        let mut j = i + 2;
        let mut angle = 0i32;
        let open = loop {
            match tokens.get(j) {
                None => break None,
                Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                    "<" => angle += 1,
                    ">" => angle -= 1,
                    "{" if angle <= 0 => break Some(j),
                    "(" | ";" if angle <= 0 => break None,
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 2;
            continue;
        };
        let close = matching_brace(tokens, open);
        let mut k = open + 1;
        while k < close {
            // Skip attributes and visibility before the field name.
            if punct_at(tokens, k, "#") {
                k = skip_group_after(tokens, k + 1, "[", "]");
                continue;
            }
            if ident_at(tokens, k, "pub") {
                k += 1;
                if punct_at(tokens, k, "(") {
                    k = skip_group_after(tokens, k, "(", ")");
                }
                continue;
            }
            if is_ident(tokens, k) && punct_at(tokens, k + 1, ":") && !punct_at(tokens, k + 2, ":")
            {
                let name = tokens[k].text.clone();
                let line = tokens[k].line;
                // Scan the type up to the field-separating comma.
                let mut depth = 0i32;
                let mut t = k + 2;
                let mut is_lock = false;
                while t < close {
                    let tok = &tokens[t];
                    if tok.kind == TokKind::Punct {
                        match tok.text.as_str() {
                            "<" | "(" | "[" => depth += 1,
                            ">" | ")" | "]" => depth -= 1,
                            "," if depth <= 0 => break,
                            _ => {}
                        }
                    } else if tok.kind == TokKind::Ident
                        && matches!(tok.text.as_str(), "Mutex" | "RwLock")
                    {
                        is_lock = true;
                    }
                    t += 1;
                }
                let twin = twin_annotation(comments, line);
                if is_lock {
                    locks.insert(name.clone());
                }
                fields.push(FieldItem {
                    struct_name: struct_name.clone(),
                    name,
                    line,
                    is_lock,
                    twin,
                });
                k = t + 1;
            } else {
                k += 1;
            }
        }
        i = close + 1;
    }
    (fields, locks)
}

/// The `xanalyze:twin(<key_fn>)` annotation on `line`, if present.
fn twin_annotation(comments: &[(u32, String)], line: u32) -> Option<String> {
    for (l, text) in comments {
        if *l != line {
            continue;
        }
        if let Some(at) = text.find("xanalyze:twin(") {
            let rest = &text[at + "xanalyze:twin(".len()..];
            if let Some(close) = rest.find(')') {
                let name = rest[..close].trim();
                if !name.is_empty() {
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// Names of `static`/`const` items with a lock type.
fn collect_static_locks(tokens: &[Token]) -> BTreeSet<String> {
    let mut locks = BTreeSet::new();
    for i in 0..tokens.len() {
        if !(ident_at(tokens, i, "static") || ident_at(tokens, i, "const")) {
            continue;
        }
        let mut j = i + 1;
        if ident_at(tokens, j, "mut") {
            j += 1;
        }
        if !(is_ident(tokens, j) && punct_at(tokens, j + 1, ":")) {
            continue;
        }
        let name = &tokens[j].text;
        let mut t = j + 2;
        while t < tokens.len() && !punct_at(tokens, t, "=") && !punct_at(tokens, t, ";") {
            if tokens[t].kind == TokKind::Ident
                && matches!(tokens[t].text.as_str(), "Mutex" | "RwLock")
            {
                locks.insert(name.clone());
                break;
            }
            t += 1;
        }
    }
    locks
}

/// Names of `let`-bound locals initialised with `Mutex::new`/`RwLock::new`
/// inside the body range.
fn collect_local_locks(tokens: &[Token], open: usize, close: usize) -> BTreeSet<String> {
    let mut locks = BTreeSet::new();
    for i in open..close {
        if !(matches!(tokens[i].text.as_str(), "Mutex" | "RwLock")
            && tokens[i].kind == TokKind::Ident
            && punct_at(tokens, i + 1, "::")
            && ident_at(tokens, i + 2, "new"))
        {
            continue;
        }
        // Walk back to the start of the statement looking for `let <name>`.
        let mut j = i;
        while j > open {
            let t = &tokens[j - 1];
            if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
                break;
            }
            j -= 1;
        }
        if ident_at(tokens, j, "let") {
            let mut n = j + 1;
            if ident_at(tokens, n, "mut") {
                n += 1;
            }
            if is_ident(tokens, n) {
                locks.insert(tokens[n].text.clone());
            }
        }
    }
    locks
}

/// Identifiers that open expressions or enum variants, not calls.
const NON_CALL_IDENTS: [&str; 18] = [
    "if", "match", "while", "for", "return", "break", "loop", "move", "as", "in", "let", "mut",
    "ref", "else", "Some", "Ok", "Err", "None",
];

fn collect_calls(tokens: &[Token], open: usize, close: usize) -> Vec<CallSite> {
    let mut calls = Vec::new();
    for i in open..=close.min(tokens.len().saturating_sub(1)) {
        if tokens[i].kind != TokKind::Ident {
            continue;
        }
        let name = tokens[i].text.as_str();
        if NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        // `name(` directly, or `name::<T>(` via turbofish.
        let after = if punct_at(tokens, i + 1, "(") {
            Some(i + 1)
        } else if punct_at(tokens, i + 1, "::") && punct_at(tokens, i + 2, "<") {
            let mut depth = 0i32;
            let mut j = i + 2;
            loop {
                match tokens.get(j) {
                    None => break None,
                    Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                        "<" => {
                            depth += 1;
                            j += 1;
                        }
                        ">" => {
                            depth -= 1;
                            j += 1;
                            if depth == 0 {
                                break punct_at(tokens, j, "(").then_some(j);
                            }
                        }
                        ";" | "{" => break None,
                        _ => j += 1,
                    },
                    _ => j += 1,
                }
            }
        } else {
            None
        };
        let Some(_paren) = after else { continue };
        // The token before distinguishes declarations and paths from
        // calls: `fn name(` is the declaration itself.
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        if prev.is_some_and(|p| p.kind == TokKind::Ident && p.text == "fn") {
            continue;
        }
        let method = prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == ".");
        let qualifier = if method {
            i.checked_sub(2)
                .map(|q| &tokens[q])
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone())
        } else if prev.is_some_and(|p| p.kind == TokKind::Punct && p.text == "::") {
            i.checked_sub(2)
                .map(|q| &tokens[q])
                .filter(|q| q.kind == TokKind::Ident)
                .map(|q| q.text.clone())
        } else {
            None
        };
        calls.push(CallSite {
            name: name.to_string(),
            tok: i,
            line: tokens[i].line,
            method,
            qualifier,
        });
    }
    calls
}

/// Skips a delimited group whose opener is expected at `at`; returns the
/// index just past the closer (or `at + 1` when the opener is absent).
fn skip_group_after(tokens: &[Token], at: usize, open: &str, close: &str) -> usize {
    if !punct_at(tokens, at, open) {
        return at + 1;
    }
    let mut depth = 0i32;
    let mut j = at;
    while j < tokens.len() {
        if tokens[j].kind == TokKind::Punct {
            if tokens[j].text == open {
                depth += 1;
            } else if tokens[j].text == close {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> FileModel {
        FileModel::build("crates/demo/src/lib.rs", "demo", src)
    }

    #[test]
    fn fns_and_impl_context_are_recovered() {
        let m = model(
            "pub struct S { x: u32 }\n\
             impl S {\n    fn one(&self) { self.two(); }\n    fn two(&self) {}\n}\n\
             impl Clone for S { fn clone(&self) -> S { S { x: 0 } } }\n\
             fn free() {}\n",
        );
        let names: Vec<(&str, Option<&str>)> = m
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("one", Some("S")),
                ("two", Some("S")),
                ("clone", Some("S")),
                ("free", None),
            ]
        );
        let one = &m.fns[0];
        assert!(one.calls.iter().any(|c| c.name == "two" && c.method));
    }

    #[test]
    fn lock_fields_statics_and_locals_are_collected() {
        let m = model(
            "use std::sync::{Mutex, RwLock};\n\
             static TABLE: Mutex<u32> = Mutex::new(0);\n\
             struct S { inner: Mutex<Vec<u8>>, map: RwLock<u32>, plain: u32 }\n\
             fn local() { let guard_src = Mutex::new(1u32); let _ = guard_src.lock(); }\n",
        );
        assert!(m.locks.contains("TABLE"));
        assert!(m.locks.contains("inner"));
        assert!(m.locks.contains("map"));
        assert!(m.locks.contains("guard_src"));
        assert!(!m.locks.contains("plain"));
        let plain = m.fields.iter().find(|f| f.name == "plain").unwrap();
        assert!(!plain.is_lock);
    }

    #[test]
    fn twin_annotations_attach_to_their_field() {
        let m = model(
            "struct P {\n    floor: u64, // xanalyze:twin(consensus_floor)\n    other: u64,\n}\n",
        );
        let floor = m.fields.iter().find(|f| f.name == "floor").unwrap();
        assert_eq!(floor.twin.as_deref(), Some("consensus_floor"));
        assert!(m.fields.iter().find(|f| f.name == "other").unwrap().twin.is_none());
    }

    #[test]
    fn calls_include_turbofish_and_qualified_paths() {
        let m = model(
            "fn f(s: &S) {\n    s.load_value::<u64>(&key());\n    Helper::build(1);\n    not_a_macro!(x);\n}\n",
        );
        let f = &m.fns[0];
        assert!(f.calls.iter().any(|c| c.name == "load_value" && c.method));
        assert!(f
            .calls
            .iter()
            .any(|c| c.name == "build" && c.qualifier.as_deref() == Some("Helper")));
        assert!(f.calls.iter().any(|c| c.name == "key" && !c.method));
        assert!(!f.calls.iter().any(|c| c.name == "not_a_macro"));
    }

    #[test]
    fn trait_fn_declarations_have_no_body() {
        let m = model("trait T { fn must(&self); fn given(&self) { self.must(); } }\n");
        assert_eq!(m.fns[0].name, "must");
        assert!(m.fns[0].body.is_none());
        assert!(m.fns[1].body.is_some());
    }

    #[test]
    fn enclosing_fn_prefers_the_innermost_body() {
        let m = model("fn outer() {\n    fn inner() { probe(); }\n}\n");
        let probe = m
            .tokens
            .iter()
            .position(|t| t.text == "probe")
            .unwrap();
        let idx = m.enclosing_fn(probe).unwrap();
        assert_eq!(m.fns[idx].name, "inner");
    }

    #[test]
    fn impl_in_return_position_is_not_an_impl_block() {
        let m = model("fn make() -> impl Iterator<Item = u32> {\n    std::iter::empty()\n}\n");
        assert_eq!(m.fns.len(), 1);
        assert_eq!(m.fns[0].self_type, None);
    }
}
