//! The cross-file workspace graph: call edges between modelled functions
//! and reachability queries over them.
//!
//! Resolution is by bare name — the model has no type information — with
//! two precision guards: a stoplist of ubiquitous names (`new`, `insert`,
//! `map`, the `StableStorage` verbs …) that would connect everything to
//! everything, and a fan-out cap that drops a name resolving to more
//! candidates than any genuine call target set in this workspace.  Both
//! guards make the graph *sparser* than reality, so the rules built on it
//! (recovery-path reachability for K1, write-path search for V1, held-lock
//! call edges for L1) degrade towards silence rather than noise — except
//! where a rule treats reachability as an exemption, which is why the
//! recovery roots below are matched by name, not by edges alone.

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{CallSite, FileModel};

/// A function node: `(file index, fn index within the file)`.
pub type FnNode = (usize, usize);

/// Names never resolved to call edges: prelude/collection vocabulary plus
/// the `StableStorage`/`WriteBatch` verbs, whose dozens of impls would
/// fuse the whole workspace into one component.  Key *use sites* are
/// classified lexically in `analyze.rs`, so dropping the verbs here loses
/// nothing the rules need.
const CALL_STOPLIST: [&str; 76] = [
    "keys", "values",
    "new", "default", "clone", "len", "is_empty", "iter", "iter_mut", "into_iter", "next", "get",
    "get_mut", "push", "pop", "insert", "contains", "contains_key", "entry", "clear", "drain",
    "retain", "extend", "unwrap", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "expect",
    "map", "map_err", "and_then", "or_else", "ok", "err", "ok_or", "ok_or_else", "filter",
    "collect", "take", "replace", "to_string", "to_owned", "into", "from", "try_from", "as_ref",
    "as_mut", "as_str", "as_slice", "as_bytes", "fmt", "eq", "cmp", "partial_cmp", "hash", "drop",
    "write", "read", "flush", "send", "recv", "lock", "min", "max", "first", "last", "position",
    "find", "any", "all", "count", "enumerate", "store", "load", "append", "remove",
];

/// Names above this many candidates are too ambiguous to mean one thing.
const FAN_OUT_CAP: usize = 8;

/// `true` for functions that anchor a recovery path: the `on_start`
/// lifecycle hook and the `recover*`/`*replay*` helpers it drives.
pub fn is_recovery_name(name: &str) -> bool {
    name == "on_start" || name.starts_with("recover") || name.contains("replay")
}

/// The modelled workspace plus its call graph.
pub struct Workspace {
    pub files: Vec<FileModel>,
    /// Production functions by bare name.
    index: BTreeMap<String, Vec<FnNode>>,
    /// Forward call edges, deduplicated.
    edges: BTreeMap<FnNode, BTreeSet<FnNode>>,
    /// Reverse edges for caller queries.
    redges: BTreeMap<FnNode, BTreeSet<FnNode>>,
}

impl Workspace {
    pub fn build(mut files: Vec<FileModel>) -> Workspace {
        // A directory module's submodules reach the parent's shared state
        // through a handle (`shared.comp.lock()` from `wal/compactor.rs`,
        // where `comp` is a field of a struct declared in `wal/mod.rs`), so
        // a purely per-file lock vocabulary would model no holds in the
        // submodule at all.  Extend each `mod.rs` vocabulary to its sibling
        // files; names stay workspace-scoped strings, so this only adds
        // holds the per-file pass would have silently dropped.
        let mut dir_locks: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for file in &files {
            if let Some(dir) = file.path.strip_suffix("/mod.rs") {
                dir_locks.insert(dir.to_string(), file.locks.clone());
            }
        }
        for file in &mut files {
            if file.path.ends_with("/mod.rs") {
                continue;
            }
            if let Some((dir, _)) = file.path.rsplit_once('/') {
                if let Some(parent_locks) = dir_locks.get(dir) {
                    file.locks.extend(parent_locks.iter().cloned());
                }
            }
        }

        // Index production (non-test) functions by bare name.
        let mut index: BTreeMap<String, Vec<FnNode>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                if !f.in_test {
                    index.entry(f.name.clone()).or_default().push((fi, ni));
                }
            }
        }

        let mut edges: BTreeMap<FnNode, BTreeSet<FnNode>> = BTreeMap::new();
        let mut redges: BTreeMap<FnNode, BTreeSet<FnNode>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                for call in &f.calls {
                    for target in resolve_with(&files, &index, fi, call) {
                        if target == (fi, ni) {
                            continue;
                        }
                        edges.entry((fi, ni)).or_default().insert(target);
                        redges.entry(target).or_default().insert((fi, ni));
                    }
                }
            }
        }
        Workspace {
            files,
            index,
            edges,
            redges,
        }
    }

    /// Call targets of `call` made from a function in file `from`.
    pub fn resolve(&self, from: usize, call: &CallSite) -> Vec<FnNode> {
        resolve_with(&self.files, &self.index, from, call)
    }

    pub fn callees(&self, n: FnNode) -> impl Iterator<Item = FnNode> + '_ {
        self.edges.get(&n).into_iter().flatten().copied()
    }

    /// Every function reachable from `start` along call edges, including
    /// `start` itself.
    pub fn callee_closure(&self, start: FnNode) -> BTreeSet<FnNode> {
        self.closure(start, &self.edges)
    }

    /// Every function that can reach `start`, including `start` itself.
    pub fn caller_closure(&self, start: FnNode) -> BTreeSet<FnNode> {
        self.closure(start, &self.redges)
    }

    fn closure(&self, start: FnNode, over: &BTreeMap<FnNode, BTreeSet<FnNode>>) -> BTreeSet<FnNode> {
        let mut seen: BTreeSet<FnNode> = BTreeSet::new();
        let mut queue = vec![start];
        while let Some(n) = queue.pop() {
            if !seen.insert(n) {
                continue;
            }
            for next in over.get(&n).into_iter().flatten() {
                if !seen.contains(next) {
                    queue.push(*next);
                }
            }
        }
        seen
    }

    /// Roots of the recovery graph: production functions with a recovery
    /// name (see [`is_recovery_name`]).
    pub fn recovery_roots(&self) -> Vec<FnNode> {
        let mut roots = Vec::new();
        for (fi, file) in self.files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                if !f.in_test && is_recovery_name(&f.name) {
                    roots.push((fi, ni));
                }
            }
        }
        roots
    }

    /// Every function reachable from any recovery root — the population
    /// whose reads satisfy K1's "restored on a recovery path" obligation.
    pub fn recovery_reachable(&self) -> BTreeSet<FnNode> {
        let mut reach = BTreeSet::new();
        for root in self.recovery_roots() {
            reach.extend(self.callee_closure(root));
        }
        reach
    }

    /// `path:line → fn` context string for messages.
    pub fn describe(&self, n: FnNode) -> String {
        let file = &self.files[n.0];
        let f = &file.fns[n.1];
        match &f.self_type {
            Some(t) => format!("{}::{}", t, f.name),
            None => f.name.clone(),
        }
    }
}

fn resolve_with(
    files: &[FileModel],
    index: &BTreeMap<String, Vec<FnNode>>,
    from: usize,
    call: &CallSite,
) -> Vec<FnNode> {
    if CALL_STOPLIST.contains(&call.name.as_str()) {
        return Vec::new();
    }
    // Same-file candidates bind tightest: private helpers shadow
    // same-named functions elsewhere in the workspace.
    let local: Vec<FnNode> = files[from]
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == call.name && !f.in_test)
        .map(|(ni, _)| (from, ni))
        .collect();
    if !local.is_empty() {
        return local;
    }
    let global = index.get(call.name.as_str()).cloned().unwrap_or_default();
    if global.len() > FAN_OUT_CAP {
        return Vec::new();
    }
    global
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, krate: &str, src: &str) -> FileModel {
        FileModel::build(path, krate, src)
    }

    #[test]
    fn cross_file_edges_and_recovery_reachability() {
        let a = file(
            "crates/core/src/a.rs",
            "core",
            "pub fn on_start() { restore_floor(); }\nfn restore_floor() { read_slot(); }\n",
        );
        let b = file(
            "crates/core/src/b.rs",
            "core",
            "pub fn read_slot() {}\npub fn unrelated() { helper(); }\nfn helper() {}\n",
        );
        let ws = Workspace::build(vec![a, b]);
        let reach = ws.recovery_reachable();
        let names: BTreeSet<String> = reach
            .iter()
            .map(|&(fi, ni)| ws.files[fi].fns[ni].name.clone())
            .collect();
        assert!(names.contains("on_start"));
        assert!(names.contains("restore_floor"));
        assert!(names.contains("read_slot"));
        assert!(!names.contains("unrelated"));
        assert!(!names.contains("helper"));
    }

    #[test]
    fn stoplist_and_fan_out_guard_precision() {
        let mut sources = vec![file(
            "crates/core/src/caller.rs",
            "core",
            "pub fn caller(v: &mut Vec<u32>) { v.insert(0, 1); spread(); }\n",
        )];
        for i in 0..9 {
            sources.push(file(
                &format!("crates/core/src/s{i}.rs"),
                "core",
                "pub fn spread() {}\n",
            ));
        }
        let ws = Workspace::build(sources);
        // `insert` is stoplisted and `spread` exceeds the fan-out cap, so
        // the caller has no outgoing edges at all.
        assert_eq!(ws.callee_closure((0, 0)).len(), 1);
    }

    #[test]
    fn same_file_helpers_shadow_global_candidates() {
        let a = file(
            "crates/core/src/a.rs",
            "core",
            "pub fn go() { helper(); }\nfn helper() { marker_a(); }\nfn marker_a() {}\n",
        );
        let b = file("crates/core/src/b.rs", "core", "pub fn helper() { }\n");
        let ws = Workspace::build(vec![a, b]);
        let closure = ws.callee_closure((0, 0));
        assert!(closure.contains(&(0, 1)));
        assert!(!closure.contains(&(1, 0)));
    }

    #[test]
    fn caller_closure_walks_reverse_edges() {
        let a = file(
            "crates/core/src/a.rs",
            "core",
            "pub fn top() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        );
        let ws = Workspace::build(vec![a]);
        let leaf = (0usize, 2usize);
        let callers = ws.caller_closure(leaf);
        assert!(callers.contains(&(0, 0)));
        assert!(callers.contains(&(0, 1)));
    }
}
