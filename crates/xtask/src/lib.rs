//! `xtask`: workspace developer tooling, currently the determinism &
//! durability linter behind `cargo xtask lint`.
//!
//! The linter is a dependency-free static-analysis pass over every
//! workspace `.rs` file (shims and lint fixtures excluded).  It tokenizes
//! each file with a small hand-rolled lexer and enforces the
//! project-specific rules catalogued in [`rules::RULES`]:
//!
//! * **D1/D2** — determinism: no wall clock, ambient entropy or unordered
//!   maps in the crates the seeded simulation / lock-step equivalence
//!   tests depend on;
//! * **B1/B2** — the paper's log-before-send barrier discipline: all
//!   durability flows through `crates/storage`, and protocol handlers pay
//!   exactly one barrier per step via `run_step`;
//! * **Z1** — zero-copy payload regression guard;
//! * **P1** — `net::tcp` connection handling maps faults to counted
//!   fair-lossy loss instead of panicking;
//! * **S1** — suppression hygiene.
//!
//! Deliberate exceptions carry a same-line
//! `// xlint:allow(<rule>) — <reason>`; the report inventories every one.
//!
//! On top of the same lexer, `cargo xtask analyze` builds a per-file item
//! model ([`model`]) and a cross-file call graph ([`graph`]) and runs the
//! semantic rule families catalogued in [`analyze::ANALYZE_RULES`]:
//! **L1** lock-order/deadlock analysis, **K1** storage-key lifecycle
//! audit, **V1** volatile-twin persistence checking.

pub mod analyze;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use analyze::ANALYZE_RULES;
pub use report::LintReport;
pub use rules::{lint_source, FileOutcome, Suppression, Violation};

/// Lints every workspace `.rs` file under `root` and aggregates the
/// outcome.  Files are visited in sorted path order, so reports are
/// deterministic.
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut lint = LintReport::default();
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rules::is_excluded(&rel_str) {
            continue;
        }
        lint.files_scanned += 1;
        let outcome = lint_source(&rel_str, &src);
        lint.violations.extend(outcome.violations);
        lint.suppressions.extend(outcome.suppressions);
    }
    Ok(lint)
}

/// Runs the semantic analyzer over every workspace crate-source file
/// under `root`.  Only `src/` files are modelled (tests and fixtures are
/// neither lock nor recovery surface); `files_scanned` counts the
/// modelled population.
pub fn analyze_workspace(root: &Path) -> io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut models = Vec::new();
    for rel in files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        if rules::is_excluded(&rel_str) {
            continue;
        }
        let Some(krate) = rules::src_crate(&rel_str) else {
            continue;
        };
        let src = fs::read_to_string(root.join(&rel))?;
        models.push(model::FileModel::build(&rel_str, &krate, &src));
    }
    let ws = graph::Workspace::build(models);
    let (violations, suppressions) = analyze::analyze(&ws);
    Ok(LintReport {
        files_scanned: ws.files.len(),
        violations,
        suppressions,
        rules: &analyze::ANALYZE_RULES,
    })
}

/// Recursively collects `.rs` files, storing paths relative to `root`.
/// Directories the lint never reads are pruned here (and re-checked in
/// [`rules::is_excluded`], so direct `lint_source` callers agree).
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if matches!(name.as_ref(), "target" | ".git" | "shims" | "node_modules") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Walks upward from `start` to the directory whose `Cargo.toml` declares
/// the workspace; falls back to `start` when none is found.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}
