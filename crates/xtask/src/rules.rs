//! The rule engine: project-specific determinism & durability rules over
//! the token stream of one file.
//!
//! Every rule is **crate-scoped**: the workspace policy table below maps
//! each crate to the invariants it must uphold.  The deterministic crates
//! (`core`, `consensus`, `fd`, `sim`, `replication`) carry the paper's
//! reproducibility obligations — the seeded sim-vs-socket lock-step
//! equivalence suite is only sound if no wall clock, ambient entropy or
//! unordered-map iteration leaks into them.  The storage barrier rules
//! protect the log-before-send discipline of `StagedStorage::run_step`,
//! and the zero-copy rule guards the PR 4 payload-copy win.
//!
//! Violations are suppressible only by a same-line comment
//! `// xlint:allow(<rule>) — <reason>`; every suppression is inventoried
//! in the lint report so exceptions stay visible.

use crate::lexer::{lex, TokKind, Token};

/// Rules in their reporting order.
pub const RULES: [(&str, &str); 7] = [
    (
        "D1",
        "no wall-clock or ambient entropy (Instant, SystemTime, thread_rng, from_entropy, \
         rand::random) in deterministic crates — take time and randomness from the runtime",
    ),
    (
        "D2",
        "no HashMap/HashSet in deterministic crates — unordered iteration breaks seeded \
         reproducibility; use BTreeMap/BTreeSet or a justified allow",
    ),
    (
        "B1",
        "no direct durability calls (sync_data, sync_all, fsync, File::create) outside \
         crates/storage — all barriers go through StableStorage/WriteBatch",
    ),
    (
        "B2",
        "no raw channel sends and no direct commit_batch in protocol crates — one barrier \
         per handler step, messages released only after the commit (run_step)",
    ),
    (
        "Z1",
        "no .to_vec()/Vec::from on payload paths in net/storage/core — zero-copy \
         regression guard (Bytes views stay refcounted end to end)",
    ),
    (
        "P1",
        "no unwrap/expect/panic!/unreachable!/todo! in net::tcp / net::poll connection \
         handling — a torn peer must map to counted fair-lossy loss, never a crash",
    ),
    (
        "S1",
        "every #[allow(...)] needs a trailing `// lint: <reason>`, and every xlint:allow \
         suppression needs a rule id and a reason",
    ),
];

/// Rule ids owned by `cargo xtask analyze` (the semantic pass).  They
/// share the `xlint:allow` suppression syntax and the S1 hygiene checks
/// with the lexical rules above, but each tool inventories only its own
/// family so an allow is "unused" only to the tool that could use it.
pub(crate) const ANALYZE_RULE_IDS: [&str; 3] = ["L1", "K1", "V1"];

/// `true` when `name` is a rule id either tool can suppress.
pub(crate) fn known_rule(name: &str) -> bool {
    RULES.iter().any(|(rule, _)| *rule == name) || ANALYZE_RULE_IDS.contains(&name)
}

/// Crates whose protocol/simulator state must evolve deterministically.
const DETERMINISTIC_CRATES: [&str; 5] = ["core", "consensus", "fd", "sim", "replication"];

/// Crates holding protocol handlers that run under the `run_step` barrier.
pub(crate) const PROTOCOL_CRATES: [&str; 4] = ["core", "consensus", "fd", "replication"];

/// Crates on the zero-copy payload path.
const ZERO_COPY_CRATES: [&str; 3] = ["net", "storage", "core"];

/// Receiver identifiers through which sends are *allowed* in protocol
/// crates: the actor-context idiom, whose buffered sends `run_step`
/// releases only after the step's single storage commit.
const CONTEXT_RECEIVERS: [&str; 3] = ["ctx", "context", "step"];

/// One rule violation.
#[derive(Clone, Debug)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// One `xlint:allow` suppression found in the tree.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub rule: String,
    pub path: String,
    pub line: u32,
    pub reason: String,
    pub used: bool,
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
}

/// How a file participates in the lint, derived from its workspace path.
#[derive(Clone, Debug, PartialEq, Eq)]
enum FileScope {
    /// Library/binary source of the named crate: full policy applies.
    Src { krate: String },
    /// Tests, benches, examples: only the suppression hygiene rule.
    TestLike,
    /// Shims, fixtures, build products: not linted at all.
    Excluded,
}

/// `true` for paths the sweep never reads (mirrored by the walker, and
/// applied again here so `lint_source` callers get the same policy).
pub fn is_excluded(rel_path: &str) -> bool {
    let p = rel_path.trim_start_matches("./");
    p.starts_with("target/")
        || p.starts_with("shims/")
        || p.starts_with(".git/")
        || p.starts_with("crates/xtask/tests/fixtures/")
}

fn classify(rel_path: &str) -> FileScope {
    let p = rel_path.trim_start_matches("./");
    if is_excluded(p) {
        return FileScope::Excluded;
    }
    if let Some(rest) = p.strip_prefix("crates/") {
        let mut parts = rest.splitn(2, '/');
        let krate = parts.next().unwrap_or("");
        let tail = parts.next().unwrap_or("");
        if tail.starts_with("src/") {
            return FileScope::Src {
                krate: krate.to_string(),
            };
        }
        return FileScope::TestLike;
    }
    if p.starts_with("src/") {
        // The workspace-root facade package.
        return FileScope::Src {
            krate: "root".to_string(),
        };
    }
    // Root tests/, examples/, benches/ and any stray top-level .rs file.
    FileScope::TestLike
}

/// The owning crate when `rel_path` is crate source (the population the
/// semantic analyzer models); `None` for tests, fixtures and shims.
pub(crate) fn src_crate(rel_path: &str) -> Option<String> {
    match classify(rel_path) {
        FileScope::Src { krate } => Some(krate),
        _ => None,
    }
}

fn rule_applies(rule: &str, scope: &FileScope, rel_path: &str) -> bool {
    let krate = match scope {
        FileScope::Excluded => return false,
        FileScope::TestLike => return rule == "S1",
        FileScope::Src { krate } => krate.as_str(),
    };
    match rule {
        "D1" => DETERMINISTIC_CRATES.contains(&krate),
        // xtask opts into D2 as well: the linter's own reports must be
        // deterministically ordered.
        "D2" => DETERMINISTIC_CRATES.contains(&krate) || krate == "xtask",
        "B1" => !matches!(krate, "storage" | "bench"),
        "B2" => PROTOCOL_CRATES.contains(&krate),
        "Z1" => ZERO_COPY_CRATES.contains(&krate),
        "P1" => krate == "net" && (rel_path.ends_with("/tcp.rs") || rel_path.ends_with("/poll.rs")),
        "S1" => true,
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

pub(crate) struct ParsedAllow {
    pub(crate) rule: String,
    pub(crate) reason: String,
    pub(crate) line: u32,
}

/// Extracts every `xlint:allow(<rule>) — <reason>` from the file's line
/// comments.  A reason may be separated by an em dash, hyphen or colon.
/// Only comments that *begin* with the marker count — suppressions are
/// trailing comments on the offending line, so prose and doc comments
/// (whose text starts with `/` or `!`) that merely mention the syntax are
/// never parsed as suppressions.
pub(crate) fn parse_allows(comments: &[(u32, String)]) -> Vec<ParsedAllow> {
    let mut allows = Vec::new();
    for (line, text) in comments {
        if !text.trim_start().starts_with("xlint:allow(") {
            continue;
        }
        let mut rest = text.as_str();
        while let Some(at) = rest.find("xlint:allow(") {
            let after = &rest[at + "xlint:allow(".len()..];
            let Some(close) = after.find(')') else {
                allows.push(ParsedAllow {
                    rule: String::new(),
                    reason: String::new(),
                    line: *line,
                });
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            // The reason for *this* allow ends where the next allow begins.
            let end = tail.find("xlint:allow(").unwrap_or(tail.len());
            let reason = tail[..end]
                .trim_start_matches(|c: char| {
                    c.is_whitespace() || c == '—' || c == '–' || c == '-' || c == ':'
                })
                .trim()
                .to_string();
            allows.push(ParsedAllow {
                rule,
                reason,
                line: *line,
            });
            rest = &after[close + 1 + end..];
        }
    }
    allows
}

// ---------------------------------------------------------------------------
// Test-region masking
// ---------------------------------------------------------------------------

/// Marks every token inside a `#[cfg(test)]` item (almost always a
/// `mod tests { … }` block).  Test code legitimately unwraps, measures wall
/// time and copies buffers; only suppression hygiene (S1) applies there.
pub(crate) fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            let start = i;
            let mut j = after_attr;
            // Skip any further attributes between #[cfg(test)] and the item.
            while tokens.get(j).map(|t| t.text.as_str()) == Some("#") {
                j = skip_attr(tokens, j);
            }
            // Consume the item: to its `;`, or through its `{ … }` block.
            let mut depth = 0usize;
            while j < tokens.len() {
                match tokens[j].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    ";" if depth == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for m in mask.iter_mut().take(j).skip(start) {
                *m = true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    mask
}

/// If tokens at `i` start a `#[cfg(… test …)]` attribute, returns the index
/// just past its closing `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    if tokens.get(i + 2)?.text != "cfg" {
        return None;
    }
    let end = skip_attr(tokens, i);
    let has_test = tokens[i..end]
        .iter()
        .any(|t| t.kind == TokKind::Ident && t.text == "test");
    has_test.then_some(end)
}

/// Skips one `#[ … ]` or `#![ … ]` attribute starting at the `#`; returns
/// the index just past the closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if tokens.get(j).map(|t| t.text.as_str()) == Some("!") {
        j += 1;
    }
    if tokens.get(j).map(|t| t.text.as_str()) != Some("[") {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// Pattern matching
// ---------------------------------------------------------------------------

struct Finding {
    rule: &'static str,
    line: u32,
    message: String,
}

fn ident_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Ident && t.text == text)
}

fn punct_at(tokens: &[Token], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Punct && t.text == text)
}

/// `.name(` — a method call on some receiver.
fn method_call_at(tokens: &[Token], i: usize, name: &str) -> bool {
    punct_at(tokens, i, ".") && ident_at(tokens, i + 1, name) && punct_at(tokens, i + 2, "(")
}

fn scan_rules(
    tokens: &[Token],
    mask: &[bool],
    active: &[&'static str],
    comments: &[(u32, String)],
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let on = |rule: &str| active.contains(&rule);

    for i in 0..tokens.len() {
        let in_test = mask[i];
        let t = &tokens[i];
        let line = t.line;

        // --- S1: #[allow(...)] needs a same-line `// lint: <reason>`.  This
        // is the one rule that also covers test code: allows hide warnings
        // wherever they appear.
        if on("S1")
            && t.text == "#"
            && {
                let mut j = i + 1;
                if punct_at(tokens, j, "!") {
                    j += 1;
                }
                punct_at(tokens, j, "[") && ident_at(tokens, j + 1, "allow")
            }
            && !has_lint_reason(comments, line)
        {
            findings.push(Finding {
                rule: "S1",
                line,
                message: "#[allow(...)] without a trailing `// lint: <reason>` justification"
                    .to_string(),
            });
        }

        if in_test || (t.kind != TokKind::Ident && t.kind != TokKind::Punct) {
            continue;
        }

        // --- D1: wall clock / ambient entropy.
        if on("D1") && t.kind == TokKind::Ident {
            let bad = match t.text.as_str() {
                "Instant" | "SystemTime" => Some(format!(
                    "std::time::{} reads the wall clock; deterministic crates take time from \
                     the runtime (ctx.now() / SimTime)",
                    t.text
                )),
                "thread_rng" | "from_entropy" => Some(format!(
                    "{} draws ambient entropy; deterministic crates take randomness from the \
                     runtime (ctx.random_u64() / seeded StdRng)",
                    t.text
                )),
                _ => None,
            };
            if let Some(message) = bad {
                findings.push(Finding {
                    rule: "D1",
                    line,
                    message,
                });
            }
            if t.text == "rand"
                && punct_at(tokens, i + 1, "::")
                && ident_at(tokens, i + 2, "random")
            {
                findings.push(Finding {
                    rule: "D1",
                    line,
                    message: "rand::random draws ambient entropy; use the runtime's seeded rng"
                        .to_string(),
                });
            }
        }

        // --- D2: unordered collections.
        if on("D2")
            && t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            findings.push(Finding {
                rule: "D2",
                line,
                message: format!(
                    "{} iterates in arbitrary order and breaks seeded reproducibility; use \
                     BTreeMap/BTreeSet (or justify with xlint:allow)",
                    t.text
                ),
            });
        }

        // --- B1: durability barriers outside crates/storage.
        if on("B1") && t.kind == TokKind::Ident {
            if matches!(t.text.as_str(), "sync_data" | "sync_all" | "fsync") {
                findings.push(Finding {
                    rule: "B1",
                    line,
                    message: format!(
                        "direct {} outside crates/storage bypasses the StableStorage barrier \
                         accounting (one barrier per run_step)",
                        t.text
                    ),
                });
            }
            if t.text == "File" && punct_at(tokens, i + 1, "::") && ident_at(tokens, i + 2, "create")
            {
                findings.push(Finding {
                    rule: "B1",
                    line,
                    message: "File::create outside crates/storage: durable state goes through \
                              StableStorage/WriteBatch"
                        .to_string(),
                });
            }
        }

        // --- B2: log-before-send.
        if on("B2") {
            if method_call_at(tokens, i, "commit_batch") {
                findings.push(Finding {
                    rule: "B2",
                    line,
                    message: "direct commit_batch in a protocol crate: the single per-step \
                              barrier belongs to run_step/StepContext::finish"
                        .to_string(),
                });
            }
            if (method_call_at(tokens, i, "send") || method_call_at(tokens, i, "multisend"))
                && !receiver_is_context(tokens, i)
            {
                findings.push(Finding {
                    rule: "B2",
                    line,
                    message: "raw send in a protocol crate bypasses run_step's \
                              commit-before-send ordering; send through the ActorContext"
                        .to_string(),
                });
            }
        }

        // --- Z1: zero-copy payload path.
        if on("Z1") {
            if method_call_at(tokens, i, "to_vec") {
                findings.push(Finding {
                    rule: "Z1",
                    line,
                    message: ".to_vec() copies the payload; Bytes views are refcounted — \
                              slice/clone the view instead (or justify with xlint:allow)"
                        .to_string(),
                });
            }
            if ident_at(tokens, i, "Vec")
                && punct_at(tokens, i + 1, "::")
                && ident_at(tokens, i + 2, "from")
                && punct_at(tokens, i + 3, "(")
            {
                findings.push(Finding {
                    rule: "Z1",
                    line,
                    message: "Vec::from copies the payload; keep the Bytes view".to_string(),
                });
            }
        }

        // --- P1: no panics in connection handling.
        if on("P1") {
            if method_call_at(tokens, i, "unwrap") || method_call_at(tokens, i, "expect") {
                findings.push(Finding {
                    rule: "P1",
                    line,
                    message: format!(
                        ".{}() in connection handling: a torn peer must become a counted \
                         fair-lossy drop, never a crash",
                        tokens[i + 1].text
                    ),
                });
            }
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && punct_at(tokens, i + 1, "!")
            {
                findings.push(Finding {
                    rule: "P1",
                    line,
                    message: format!(
                        "{}! in connection handling: map the failure to TcpMetrics \
                         drop/torn counters instead",
                        t.text
                    ),
                });
            }
        }
    }
    findings
}

/// For `.send(` at token index `i` (the `.`), `true` when the receiver is
/// one of the blessed ActorContext identifiers.
fn receiver_is_context(tokens: &[Token], i: usize) -> bool {
    i > 0
        && tokens[i - 1].kind == TokKind::Ident
        && CONTEXT_RECEIVERS.contains(&tokens[i - 1].text.as_str())
}

/// `true` when a comment on `line` carries a standalone `lint:` marker
/// (an `xlint:` prefix does not count).
fn has_lint_reason(comments: &[(u32, String)], line: u32) -> bool {
    comments.iter().any(|(l, text)| {
        *l == line
            && text.match_indices("lint:").any(|(at, _)| {
                let reason = text[at + "lint:".len()..].trim();
                let standalone = at == 0
                    || !text[..at]
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric());
                standalone && !reason.is_empty()
            })
    })
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Lints one file's source as if it lived at `rel_path` (workspace-relative,
/// forward slashes).  Pure: the fixture tests drive it directly.
pub fn lint_source(rel_path: &str, src: &str) -> FileOutcome {
    let scope = classify(rel_path);
    if scope == FileScope::Excluded {
        return FileOutcome::default();
    }
    let active: Vec<&'static str> = RULES
        .iter()
        .map(|(rule, _)| *rule)
        .filter(|rule| rule_applies(rule, &scope, rel_path))
        .collect();
    if active.is_empty() {
        return FileOutcome::default();
    }

    let lexed = lex(src);
    let mask = test_mask(&lexed.tokens);
    let findings = scan_rules(&lexed.tokens, &mask, &active, &lexed.comments);
    let allows = parse_allows(&lexed.comments);

    let mut outcome = FileOutcome::default();
    let mut used = vec![false; allows.len()];

    for finding in findings {
        let suppressed = allows.iter().enumerate().find(|(_, a)| {
            a.line == finding.line && a.rule == finding.rule && !a.reason.is_empty()
        });
        if let Some((idx, _)) = suppressed {
            used[idx] = true;
        } else {
            outcome.violations.push(Violation {
                rule: finding.rule,
                path: rel_path.to_string(),
                line: finding.line,
                message: finding.message,
            });
        }
    }

    // Suppression hygiene: unknown rule ids and missing reasons are S1
    // violations — a suppression that cannot suppress anything is a typo
    // waiting to hide a real finding.
    for allow in &allows {
        if !known_rule(&allow.rule) {
            outcome.violations.push(Violation {
                rule: "S1",
                path: rel_path.to_string(),
                line: allow.line,
                message: format!(
                    "xlint:allow({}) names no known rule (known: D1 D2 B1 B2 Z1 P1 S1 \
                     L1 K1 V1)",
                    allow.rule
                ),
            });
        } else if allow.reason.is_empty() {
            outcome.violations.push(Violation {
                rule: "S1",
                path: rel_path.to_string(),
                line: allow.line,
                message: format!(
                    "xlint:allow({}) without a reason — write `// xlint:allow({}) — <why>`",
                    allow.rule, allow.rule
                ),
            });
        }
    }

    // Inventory only the lexical family: allows for the analyze rules
    // (L1/K1/V1) are inventoried by `cargo xtask analyze`, and counting
    // them here would make --deny-unused-allows flag every one as unused.
    for (idx, allow) in allows.into_iter().enumerate() {
        if !RULES.iter().any(|(rule, _)| *rule == allow.rule) {
            continue;
        }
        outcome.suppressions.push(Suppression {
            rule: allow.rule,
            path: rel_path.to_string(),
            line: allow.line,
            reason: allow.reason,
            used: used[idx],
        });
    }
    outcome
}
