//! Report assembly and the machine-readable JSON emitter.
//!
//! The JSON writer is hand-rolled (the build environment is offline, and a
//! suppression inventory does not justify a serializer dependency).  Field
//! order and array order are deterministic: files are walked in sorted
//! order and findings are emitted in source order, so two runs over the
//! same tree produce byte-identical reports.

use crate::rules::{Suppression, Violation, RULES};

/// The whole-workspace lint result.  Shared by both tools: `cargo xtask
/// lint` fills it with the lexical rules, `analyze` with the semantic
/// ones; `rules` names the catalogue the findings were produced against.
#[derive(Debug)]
pub struct LintReport {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    pub suppressions: Vec<Suppression>,
    pub rules: &'static [(&'static str, &'static str)],
}

impl Default for LintReport {
    fn default() -> Self {
        LintReport {
            files_scanned: 0,
            violations: Vec::new(),
            suppressions: Vec::new(),
            rules: &RULES,
        }
    }
}

impl LintReport {
    /// `true` when the tree is clean (suppressed findings do not count).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable summary, one line per violation plus the
    /// suppression inventory.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{}:{} [{}] {}\n",
                v.path, v.line, v.rule, v.message
            ));
        }
        let used = self.suppressions.iter().filter(|s| s.used).count();
        out.push_str(&format!(
            "xlint: {} file(s) scanned, {} violation(s), {} suppression(s) ({} used)\n",
            self.files_scanned,
            self.violations.len(),
            self.suppressions.len(),
            used,
        ));
        for s in &self.suppressions {
            out.push_str(&format!(
                "  allow {} at {}:{}{} — {}\n",
                s.rule,
                s.path,
                s.line,
                if s.used { "" } else { " (unused)" },
                s.reason
            ));
        }
        out
    }

    /// `--deny-unused-allows`: promote every inventoried suppression
    /// whose rule never fired on its line to an S1 violation.  A stale
    /// allow is a hole a future regression walks through silently.
    pub fn deny_unused_allows(&mut self) {
        let extra: Vec<Violation> = self
            .suppressions
            .iter()
            .filter(|s| !s.used)
            .map(|s| Violation {
                rule: "S1",
                path: s.path.clone(),
                line: s.line,
                message: format!(
                    "unused xlint:allow({}) — the rule no longer fires on this line; remove \
                     the stale suppression",
                    s.rule
                ),
            })
            .collect();
        self.violations.extend(extra);
    }

    /// The machine-readable report (`cargo xtask lint --report`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"rules\": [\n");
        for (i, (rule, description)) in self.rules.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": {}, \"description\": {}}}{}\n",
                json_str(rule),
                json_str(description),
                comma(i, self.rules.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}}}{}\n",
                json_str(v.rule),
                json_str(&v.path),
                v.line,
                json_str(&v.message),
                comma(i, self.violations.len())
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"suppressions\": [\n");
        for (i, s) in self.suppressions.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"used\": {}, \"reason\": {}}}{}\n",
                json_str(&s.rule),
                json_str(&s.path),
                s.line,
                s.used,
                json_str(&s.reason),
                comma(i, self.suppressions.len())
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn comma(i: usize, len: usize) -> &'static str {
    if i + 1 == len {
        ""
    } else {
        ","
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    #[test]
    fn json_escapes_and_terminates() {
        let mut report = LintReport {
            files_scanned: 1,
            ..LintReport::default()
        };
        report.violations.push(Violation {
            rule: "D1",
            path: "crates/core/src/a.rs".to_string(),
            line: 3,
            message: "quote \" backslash \\ newline \n done".to_string(),
        });
        let json = report.render_json();
        assert!(json.contains("\\\" backslash \\\\ newline \\n done"));
        assert!(json.trim_end().ends_with('}'));
        // No raw control characters survive.
        assert!(!json.contains('\u{0}'));
    }
}
