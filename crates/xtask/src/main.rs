//! `cargo xtask` — workspace developer tasks.
//!
//! ```text
//! cargo xtask lint [--report <path>] [--root <dir>]
//! ```
//!
//! `lint` runs the determinism & durability linter over the workspace and
//! exits non-zero on any unsuppressed violation.  `--report` additionally
//! writes the machine-readable JSON suppression inventory (uploaded as a
//! CI artifact).

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("usage: cargo xtask lint [--report <path>] [--root <dir>]");
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "lint" => lint(&args[1..]),
        other => {
            eprintln!("unknown xtask command `{other}` (available: lint)");
            ExitCode::FAILURE
        }
    }
}

fn lint(args: &[String]) -> ExitCode {
    let mut report_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => match it.next() {
                Some(path) => report_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--report requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown lint flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root.unwrap_or_else(|| xtask::find_workspace_root(&cwd));
    let lint = match xtask::lint_workspace(&root) {
        Ok(lint) => lint,
        Err(err) => {
            eprintln!("xlint: failed to scan {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };

    print!("{}", lint.render_text());
    if let Some(path) = report_path {
        if let Err(err) = std::fs::write(&path, lint.render_json()) {
            eprintln!("xlint: failed to write report {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    }
    if lint.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
