//! `cargo xtask` — workspace developer tasks.
//!
//! ```text
//! cargo xtask lint    [--report <path>] [--root <dir>] [--deny-unused-allows]
//! cargo xtask analyze [--report <path>] [--root <dir>] [--deny-unused-allows]
//! ```
//!
//! `lint` runs the determinism & durability linter (lexical rules D1–S1)
//! and `analyze` the semantic analyzer (lock-order L1, key lifecycle K1,
//! volatile-twin V1) over the workspace; both exit non-zero on any
//! unsuppressed violation.  `--report` additionally writes the
//! machine-readable JSON finding/suppression inventory (uploaded as a CI
//! artifact), and `--deny-unused-allows` treats a suppression whose rule
//! never fires on its line as a violation in its own right.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: cargo xtask <lint|analyze> [--report <path>] [--root <dir>] \
             [--deny-unused-allows]"
        );
        return ExitCode::FAILURE;
    };
    match command.as_str() {
        "lint" => run(Tool::Lint, &args[1..]),
        "analyze" => run(Tool::Analyze, &args[1..]),
        other => {
            eprintln!("unknown xtask command `{other}` (available: lint, analyze)");
            ExitCode::FAILURE
        }
    }
}

#[derive(Clone, Copy)]
enum Tool {
    Lint,
    Analyze,
}

impl Tool {
    fn name(self) -> &'static str {
        match self {
            Tool::Lint => "lint",
            Tool::Analyze => "analyze",
        }
    }
}

fn run(tool: Tool, args: &[String]) -> ExitCode {
    let mut report_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut deny_unused = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => match it.next() {
                Some(path) => report_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--report requires a path");
                    return ExitCode::FAILURE;
                }
            },
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--root requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--deny-unused-allows" => deny_unused = true,
            other => {
                eprintln!("unknown {} flag `{other}`", tool.name());
                return ExitCode::FAILURE;
            }
        }
    }

    let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let root = root.unwrap_or_else(|| xtask::find_workspace_root(&cwd));
    let outcome = match tool {
        Tool::Lint => xtask::lint_workspace(&root),
        Tool::Analyze => xtask::analyze_workspace(&root),
    };
    let mut report = match outcome {
        Ok(report) => report,
        Err(err) => {
            eprintln!(
                "xtask {}: failed to scan {}: {err}",
                tool.name(),
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    if deny_unused {
        report.deny_unused_allows();
    }

    print!("{}", report.render_text());
    if let Some(path) = report_path {
        if let Err(err) = std::fs::write(&path, report.render_json()) {
            eprintln!(
                "xtask {}: failed to write report {}: {err}",
                tool.name(),
                path.display()
            );
            return ExitCode::FAILURE;
        }
        println!("report written to {}", path.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
