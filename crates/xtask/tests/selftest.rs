//! The linter must accept its own source: `crates/xtask/src` is linted
//! with the same workspace policy it enforces on everyone else (S1
//! everywhere, plus D2/B1 — the linter opts into determinism and
//! barrier discipline for its own code).  The semantic analyzer holds
//! itself to the same standard.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/xtask sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn the_linter_accepts_its_own_source() {
    let report = xtask::lint_workspace(&workspace_root()).expect("workspace scan");
    let own: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.path.starts_with("crates/xtask/"))
        .collect();
    assert!(own.is_empty(), "the linter flags its own source: {own:#?}");
}

#[test]
fn the_analyzer_accepts_its_own_source() {
    let report = xtask::analyze_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 0, "the analyzer modelled no files");
    let own: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.path.starts_with("crates/xtask/"))
        .collect();
    assert!(own.is_empty(), "the analyzer flags its own source: {own:#?}");
}

#[test]
fn the_sweep_actually_scans_the_linter() {
    // Guard against the exclusion list silently eating crates/xtask/src:
    // the fixture exclusion must not be wider than intended.
    let outcome = xtask::lint_source(
        "crates/xtask/src/selfcheck_probe.rs",
        "use std::collections::HashMap;\n",
    );
    assert!(
        outcome.violations.iter().any(|v| v.rule == "D2"),
        "crates/xtask/src must be in D2 scope for the self-test to mean anything"
    );
}
