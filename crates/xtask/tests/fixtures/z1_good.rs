// Z1 fixture: payloads stay refcounted views end to end.
use bytes::Bytes;

fn pass_through(payload: &Bytes) -> Bytes {
    let window = payload.slice(4..);
    window.clone()
}
