// S1 fixture: an allow attribute with no justification.
#[allow(dead_code)]
fn unjustified() {}

#[allow(clippy::too_many_arguments)]
fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {}
