// S1 fixture: every allow carries its reason.
#[allow(dead_code)] // lint: exercised only by the recovery integration suite
fn justified() {}

#[allow(clippy::too_many_arguments)] // lint: mirrors the paper's parameter list
fn wide(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8, g: u8, h: u8) {}
