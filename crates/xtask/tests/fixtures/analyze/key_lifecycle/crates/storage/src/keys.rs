//! Known-bad K1 fixture keys module (lifecycle bugs live at the use
//! sites in `crates/consensus/src/multi.rs`).
//!
//! | Key | Kind |
//! |-----|------|
//! | `fix/floor` | slot |
//! | `fix/log` | log |

use crate::api::StorageKey;

/// Durable forget watermark.
pub fn floor() -> StorageKey {
    StorageKey::new("fix/floor")
}

/// Per-step journal.
pub fn journal() -> StorageKey {
    StorageKey::new("fix/log")
}
