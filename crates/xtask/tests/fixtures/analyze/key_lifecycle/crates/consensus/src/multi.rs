//! The PR 7 forget-floor regression, distilled: recovery reads the floor
//! back, but no step ever persists it — after any crash the watermark
//! regresses to zero.  The journal has the inverse bug: it is appended to
//! on every step but no recovery path replays it.

use storage::keys;

pub struct Multi {
    floor: u64, // xanalyze:twin(floor)
}

impl Multi {
    pub fn on_start(&mut self, storage: &Storage) {
        if let Some(floor) = storage.load_value::<u64>(&keys::floor()) {
            self.floor = floor;
        }
    }

    pub fn forget_below(&mut self, k: u64) {
        // The durable write is missing: nothing stores keys::floor().
        self.floor = k;
    }

    pub fn log_step(&self, storage: &Storage) {
        storage.append_value(&keys::journal(), &1u64);
    }
}
