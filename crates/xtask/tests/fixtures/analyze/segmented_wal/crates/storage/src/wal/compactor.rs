//! The worker submodule: parks on the parent module's condvar while
//! holding the parent's flags mutex.  `comp` is declared in `mod.rs`, so
//! this hold is only visible to L1 through the shared directory-module
//! lock vocabulary.

use super::WalShared;

pub(crate) fn worker_loop(shared: &WalShared) {
    let mut flags = shared.comp.lock().unwrap();
    while !*flags {
        flags = shared.comp_cv.wait(flags).unwrap();
    }
}
