//! Mini segmented-WAL workspace: shared state lives in the directory
//! module, the background worker in a submodule.  Pins two analyzer
//! behaviours the real `storage/src/wal/` split depends on: fields of a
//! `pub(crate)` struct count as lock vocabulary, and the `mod.rs`
//! vocabulary extends to sibling files so holds in submodules are
//! modelled at all.

mod compactor;

use std::sync::{Condvar, Mutex};

pub(crate) struct WalShared {
    inner: Mutex<u64>,
    comp: Mutex<bool>,
    comp_cv: Condvar,
    journal: std::fs::File,
}

impl WalShared {
    pub fn commit(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner += 1;
        self.journal.sync_data().unwrap();
    }

    pub fn size(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        *inner
    }
}
