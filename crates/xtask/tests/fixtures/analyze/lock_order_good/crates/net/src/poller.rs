//! Known-good twin of the poller fixture: the write-queue guard is
//! dropped before the poller parks in `epoll_wait`.

use std::sync::Mutex;

pub struct Poller {
    epoll: Epoll,
    write_queue: Mutex<Vec<u8>>,
}

pub struct Epoll {
    fd: i32,
}

impl Epoll {
    pub fn epoll_wait(&self, timeout_ms: i32) -> usize {
        let _ = (self.fd, timeout_ms);
        0
    }
}

impl Poller {
    pub fn turn(&self) -> usize {
        let guard = self.write_queue.lock().unwrap();
        let pending = guard.len() as i32;
        drop(guard);
        self.epoll.epoll_wait(pending)
    }
}
