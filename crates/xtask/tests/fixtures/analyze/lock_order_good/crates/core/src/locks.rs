//! Known-good twin of `lock_cycle`: every path takes `a` before `b`, and
//! the barrier runs only after the guard is dropped.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    file: std::fs::File,
}

impl Pair {
    pub fn sum(&self) -> u64 {
        let x = self.a.lock().unwrap();
        let y = self.b.lock().unwrap();
        *x + *y
    }

    pub fn reset(&self) {
        let mut x = self.a.lock().unwrap();
        let mut y = self.b.lock().unwrap();
        *x = 0;
        *y = 0;
    }

    pub fn persist(&self) {
        let guard = self.a.lock().unwrap();
        let dirty = *guard > 0;
        drop(guard);
        if dirty {
            self.file.sync_data().unwrap();
        }
    }
}
