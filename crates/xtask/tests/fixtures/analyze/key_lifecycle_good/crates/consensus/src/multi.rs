//! Known-good twin of the forget-floor fixture: the floor raise persists
//! the watermark in the same step, and recovery restores both keys.

use storage::keys;

pub struct Multi {
    floor: u64, // xanalyze:twin(floor)
}

impl Multi {
    pub fn on_start(&mut self, storage: &Storage) {
        if let Some(floor) = storage.load_value::<u64>(&keys::floor()) {
            self.floor = floor;
        }
        for _entry in storage.load_log_values::<u64>(&keys::journal()) {}
    }

    pub fn forget_below(&mut self, storage: &Storage, k: u64) {
        self.floor = k;
        storage.store_value(&keys::floor(), &k);
    }

    pub fn log_step(&self, storage: &Storage) {
        storage.append_value(&keys::journal(), &1u64);
    }
}
