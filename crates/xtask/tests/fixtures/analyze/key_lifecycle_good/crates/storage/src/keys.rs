//! Known-good twin of the `key_lifecycle` keys module.
//!
//! | Key | Kind |
//! |-----|------|
//! | `fix/floor` | slot |
//! | `fix/log` | log |

use crate::api::StorageKey;

/// Durable forget watermark.
pub fn floor() -> StorageKey {
    StorageKey::new("fix/floor")
}

/// Per-step journal.
pub fn journal() -> StorageKey {
    StorageKey::new("fix/log")
}
