//! Known-good twin of the V1 fixture: the mutation and the durable write
//! travel together — `raise` calls `persist`, so the twin write is in the
//! mutating function's callee closure.

use storage::keys;

pub struct State {
    floor: u64, // xanalyze:twin(floor)
}

impl State {
    pub fn on_start(&mut self, storage: &Storage) {
        if let Some(floor) = storage.load_value::<u64>(&keys::floor()) {
            self.floor = floor;
        }
    }

    pub fn raise(&mut self, storage: &Storage, k: u64) {
        self.floor = k;
        self.persist(storage);
    }

    pub fn persist(&self, storage: &Storage) {
        storage.store_value(&keys::floor(), &self.floor);
    }
}
