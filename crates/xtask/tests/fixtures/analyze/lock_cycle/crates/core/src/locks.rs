//! Known-bad L1 fixture: `ab` takes `a` then `b` while `ba` takes them in
//! the opposite order — the classic deadlock cycle — and `persist` holds
//! `a` across a blocking barrier.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
    file: std::fs::File,
}

impl Pair {
    pub fn ab(&self) -> u64 {
        let x = self.a.lock().unwrap();
        let y = self.b.lock().unwrap();
        *x + *y
    }

    pub fn ba(&self) -> u64 {
        let y = self.b.lock().unwrap();
        let x = self.a.lock().unwrap();
        *x + *y
    }

    pub fn persist(&self) {
        let _guard = self.a.lock().unwrap();
        self.file.sync_data().unwrap();
    }
}
