//! Known-bad L1 fixture for the event-loop transport: the poller parks in
//! `epoll_wait` while still holding the write-queue mutex, so every
//! sender blocks until the next readiness event.

use std::sync::Mutex;

pub struct Poller {
    epoll: Epoll,
    write_queue: Mutex<Vec<u8>>,
}

pub struct Epoll {
    fd: i32,
}

impl Epoll {
    pub fn epoll_wait(&self, timeout_ms: i32) -> usize {
        let _ = (self.fd, timeout_ms);
        0
    }
}

impl Poller {
    pub fn turn(&self) -> usize {
        let queue = self.write_queue.lock().unwrap();
        let ready = self.epoll.epoll_wait(queue.len() as i32);
        ready
    }
}
