//! Keys module for the V1 fixtures.
//!
//! | Key | Kind |
//! |-----|------|
//! | `twin/floor` | slot |

use crate::api::StorageKey;

/// Durable twin of the volatile floor field.
pub fn floor() -> StorageKey {
    StorageKey::new("twin/floor")
}
