//! Known-bad V1 fixture: `raise` mutates the annotated field but nothing
//! on its path writes the storage twin, and `ghost` names a constructor
//! that does not exist.

use storage::keys;

pub struct State {
    floor: u64, // xanalyze:twin(floor)
    ghost: u64, // xanalyze:twin(missing)
}

impl State {
    pub fn on_start(&mut self, storage: &Storage) {
        if let Some(floor) = storage.load_value::<u64>(&keys::floor()) {
            self.floor = floor;
        }
    }

    pub fn raise(&mut self, k: u64) {
        self.floor = k;
    }

    pub fn persist(&self, storage: &Storage) {
        storage.store_value(&keys::floor(), &self.floor);
    }
}
