//! Known-good twin of `segmented_wal`: the barrier runs after the guard
//! is dropped, and the submodule's condvar park carries a justified
//! suppression (a condvar wait releases the lock while parked).

mod compactor;

use std::sync::{Condvar, Mutex};

pub(crate) struct WalShared {
    inner: Mutex<u64>,
    comp: Mutex<bool>,
    comp_cv: Condvar,
    journal: std::fs::File,
}

impl WalShared {
    pub fn commit(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner += 1;
        drop(inner);
        self.journal.sync_data().unwrap();
    }

    pub fn size(&self) -> u64 {
        let inner = self.inner.lock().unwrap();
        *inner
    }
}
