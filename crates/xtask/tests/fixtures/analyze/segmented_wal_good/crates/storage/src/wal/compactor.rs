//! The worker submodule with a justified suppression on its park: the
//! allow must bind to the cross-file finding and be inventoried as used.

use super::WalShared;

pub(crate) fn worker_loop(shared: &WalShared) {
    let mut flags = shared.comp.lock().unwrap();
    while !*flags {
        // xlint:allow(L1) — a condvar wait atomically releases the flags lock while parked
        flags = shared.comp_cv.wait(flags).unwrap();
    }
}
