// D2 fixture: unordered collections in a deterministic crate.
use std::collections::{HashMap, HashSet};

struct Table {
    by_round: HashMap<u64, Vec<u8>>,
    seen: HashSet<u64>,
}

fn drain(t: &mut Table) -> Vec<u64> {
    t.by_round.keys().copied().collect()
}
