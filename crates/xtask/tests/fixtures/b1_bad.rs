// B1 fixture: direct durability calls outside crates/storage.
use std::fs::File;
use std::io::Write;

fn persist(path: &str, payload: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(payload)?;
    f.sync_data()?;
    f.sync_all()
}
