// B2 fixture: raw sends and direct commits bypass run_step's
// commit-before-send ordering.
fn handler(&mut self, ctx: &mut dyn ActorContext<Msg>) {
    let batch = self.stage();
    let _ = ctx.storage().commit_batch(batch);
    self.loopback.send(Msg::Decided);
    tx.send(frame);
}
