// P1 fixture: stream faults map to counted fair-lossy loss.
fn read_loop(stream: &mut TcpStream, metrics: &TcpMetrics) {
    let mut buf = [0u8; 8];
    if stream.read_exact(&mut buf).is_err() {
        metrics.record_torn_frame();
        return;
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&buf[..4]);
    if u32::from_le_bytes(magic) != MAGIC {
        metrics.record_stream_error();
    }
}
