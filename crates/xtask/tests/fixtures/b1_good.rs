// B1 fixture: durability goes through the storage abstraction.
use abcast_storage::{StorageKey, WriteBatch};

fn persist(ctx: &mut dyn ActorContext<()>, payload: &[u8]) {
    let mut batch = WriteBatch::new();
    batch.store(&StorageKey::new("slot"), payload);
    // The batch is committed (with its single barrier) by run_step.
    let _ = batch;
}
