// D1 fixture: time and randomness come from the runtime.
use abcast_types::{SimDuration, SimTime};

fn step(ctx: &mut dyn ActorContext<()>) {
    let now: SimTime = ctx.now();
    let jitter = ctx.random_u64() % 7;
    ctx.set_timer(TimerId::new(1), SimDuration::from_millis(10 + jitter));
    let _ = now;
    // Mentioning Instant in a comment or "Instant" in a string is fine.
    let _s = "Instant::now() and SystemTime in a string literal";
}
