// P1 fixture: panics in connection handling.
fn read_loop(stream: &mut TcpStream) {
    let mut buf = [0u8; 8];
    stream.read_exact(&mut buf).unwrap();
    let magic = u32::from_le_bytes(buf[..4].try_into().expect("length checked"));
    if magic != MAGIC {
        panic!("bad handshake");
    }
    match route(magic) {
        Some(peer) => deliver(peer),
        None => unreachable!("route covers every peer"),
    }
}
