// D2 fixture: ordered collections keep seeded runs reproducible.
use std::collections::{BTreeMap, BTreeSet};

struct Table {
    by_round: BTreeMap<u64, Vec<u8>>,
    seen: BTreeSet<u64>,
}

fn drain(t: &mut Table) -> Vec<u64> {
    t.by_round.keys().copied().collect()
}
