// B2 fixture: sends go through the ActorContext; run_step commits the
// staged batch before releasing them.
fn handler(&mut self, ctx: &mut dyn ActorContext<Msg>) {
    run_step(ctx, |step| {
        step.storage().store_value(&key(), &1u64);
        step.send(self.sequencer, Msg::Propose);
        step.multisend(Msg::Decided);
    });
}
