// D1 fixture: a *justified* wall-clock read in a deterministic crate.
// The campaign driver measures real elapsed time purely for operator
// reporting (seeds/sec); no simulated state depends on it, which is the
// canonical legitimate reason to suppress D1.

fn campaign_rate(seeds: u64) -> f64 {
    let started = std::time::Instant::now(); // xlint:allow(D1) — operator-facing wall-clock rate only; no simulated state reads it
    run_all(seeds);
    seeds as f64 / started.elapsed().as_secs_f64()
}

fn run_all(_seeds: u64) {}
