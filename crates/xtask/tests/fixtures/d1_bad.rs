// D1 fixture: wall clock and ambient entropy in a deterministic crate.
use std::time::{Duration, Instant, SystemTime};

fn elapsed() -> Duration {
    let start = Instant::now();
    let _wall = SystemTime::now();
    start.elapsed()
}

fn noise() -> u64 {
    let mut rng = rand::thread_rng();
    let x: u64 = rand::random();
    x ^ rng.gen::<u64>()
}
