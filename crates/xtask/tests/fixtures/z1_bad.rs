// Z1 fixture: payload copies on the zero-copy path.
use bytes::Bytes;

fn copy_out(payload: &Bytes) -> Vec<u8> {
    let owned = payload.to_vec();
    let again = Vec::from(&payload[..]);
    let _ = again;
    owned
}
