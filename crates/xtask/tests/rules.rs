//! Fixture-based tests: every rule has at least one known-bad snippet it
//! fires on and a known-good twin it accepts, plus suppression-syntax and
//! scoping tests.  Lexical-rule fixtures live under `tests/fixtures/` and
//! semantic-rule fixtures are mini-workspaces under
//! `tests/fixtures/analyze/` (all excluded from the workspace sweep —
//! they are deliberately full of violations).

use std::path::Path;

use xtask::lint_source;

fn rules_fired(rel_path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(rel_path, src)
        .violations
        .iter()
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

fn assert_clean(rel_path: &str, src: &str) {
    let outcome = lint_source(rel_path, src);
    assert!(
        outcome.violations.is_empty(),
        "expected clean but got: {:#?}",
        outcome.violations
    );
}

// --- D1 -------------------------------------------------------------------

#[test]
fn d1_fires_on_wall_clock_and_entropy_in_deterministic_crates() {
    let bad = include_str!("fixtures/d1_bad.rs");
    let outcome = lint_source("crates/consensus/src/fixture.rs", bad);
    let d1: Vec<u32> = outcome
        .violations
        .iter()
        .filter(|v| v.rule == "D1")
        .map(|v| v.line)
        .collect();
    // use-line Instant + SystemTime, Instant::now, SystemTime::now,
    // thread_rng, rand::random.
    assert!(d1.len() >= 6, "expected ≥6 D1 findings, got {d1:?}");
    assert!(outcome.violations.iter().all(|v| v.rule == "D1"));
}

#[test]
fn d1_accepts_runtime_time_and_ignores_strings_and_comments() {
    assert_clean(
        "crates/consensus/src/fixture.rs",
        include_str!("fixtures/d1_good.rs"),
    );
}

#[test]
fn d1_does_not_apply_outside_deterministic_crates() {
    // The TCP transport legitimately reads the wall clock.
    assert_clean("crates/net/src/fixture.rs", include_str!("fixtures/d1_bad.rs"));
}

// --- D2 -------------------------------------------------------------------

#[test]
fn d2_fires_on_unordered_collections() {
    let fired = rules_fired(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/d2_bad.rs"),
    );
    assert_eq!(fired, vec!["D2"]);
}

#[test]
fn d2_accepts_btree_collections() {
    assert_clean(
        "crates/sim/src/fixture.rs",
        include_str!("fixtures/d2_good.rs"),
    );
}

// --- B1 -------------------------------------------------------------------

#[test]
fn b1_fires_on_direct_durability_outside_storage() {
    let outcome = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/b1_bad.rs"));
    let b1 = outcome.violations.iter().filter(|v| v.rule == "B1").count();
    // File::create, sync_data, sync_all.
    assert!(b1 >= 3, "expected ≥3 B1 findings, got {:#?}", outcome.violations);
}

#[test]
fn b1_is_allowed_inside_the_storage_crate() {
    assert_clean(
        "crates/storage/src/fixture.rs",
        include_str!("fixtures/b1_bad.rs"),
    );
}

#[test]
fn b1_accepts_writes_through_the_batch() {
    assert_clean(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/b1_good.rs"),
    );
}

// --- B2 -------------------------------------------------------------------

#[test]
fn b2_fires_on_raw_sends_and_direct_commit() {
    let outcome = lint_source("crates/core/src/fixture.rs", include_str!("fixtures/b2_bad.rs"));
    let b2 = outcome.violations.iter().filter(|v| v.rule == "B2").count();
    // commit_batch + loopback.send + tx.send.
    assert_eq!(b2, 3, "got {:#?}", outcome.violations);
}

#[test]
fn b2_accepts_context_sends_under_run_step() {
    assert_clean(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/b2_good.rs"),
    );
}

// --- Z1 -------------------------------------------------------------------

#[test]
fn z1_fires_on_payload_copies() {
    let outcome = lint_source("crates/net/src/fixture.rs", include_str!("fixtures/z1_bad.rs"));
    let z1 = outcome.violations.iter().filter(|v| v.rule == "Z1").count();
    assert_eq!(z1, 2, "got {:#?}", outcome.violations);
}

#[test]
fn z1_accepts_refcounted_views_and_other_crates() {
    assert_clean("crates/net/src/fixture.rs", include_str!("fixtures/z1_good.rs"));
    // The replication services are off the payload hot path.
    assert_clean(
        "crates/replication/src/fixture.rs",
        include_str!("fixtures/z1_bad.rs"),
    );
}

// --- P1 -------------------------------------------------------------------

#[test]
fn p1_fires_on_panics_in_tcp_connection_handling() {
    let outcome = lint_source("crates/net/src/tcp.rs", include_str!("fixtures/p1_bad.rs"));
    let p1 = outcome.violations.iter().filter(|v| v.rule == "P1").count();
    // unwrap, expect, panic!, unreachable!.
    assert_eq!(p1, 4, "got {:#?}", outcome.violations);
}

#[test]
fn p1_accepts_counted_fault_mapping_and_is_file_scoped() {
    assert_clean("crates/net/src/tcp.rs", include_str!("fixtures/p1_good.rs"));
    // Other net modules (and the rest of the tree) may unwrap.
    assert_clean("crates/net/src/frame.rs", include_str!("fixtures/p1_bad.rs"));
}

#[test]
fn p1_also_covers_the_poll_module() {
    // The readiness layer under the transport is connection handling too:
    // a bad fd or a failed syscall must surface as io::Error, not a panic.
    let outcome = lint_source("crates/net/src/poll.rs", include_str!("fixtures/p1_bad.rs"));
    let p1 = outcome.violations.iter().filter(|v| v.rule == "P1").count();
    assert_eq!(p1, 4, "got {:#?}", outcome.violations);
}

// --- S1 -------------------------------------------------------------------

#[test]
fn s1_fires_on_unjustified_allow_attributes() {
    let outcome = lint_source("crates/fd/src/fixture.rs", include_str!("fixtures/s1_bad.rs"));
    let s1 = outcome.violations.iter().filter(|v| v.rule == "S1").count();
    assert_eq!(s1, 2, "got {:#?}", outcome.violations);
}

#[test]
fn s1_accepts_justified_allows_everywhere_including_tests() {
    assert_clean("crates/fd/src/fixture.rs", include_str!("fixtures/s1_good.rs"));
    let fired = rules_fired("tests/fixture.rs", include_str!("fixtures/s1_bad.rs"));
    assert_eq!(fired, vec!["S1"], "S1 also covers test-like files");
}

// --- Suppressions ---------------------------------------------------------

#[test]
fn a_justified_suppression_silences_the_rule_and_is_inventoried() {
    let src = "use std::collections::HashMap; \
               // xlint:allow(D2) — never iterated, keyed lookups only\n";
    let outcome = lint_source("crates/core/src/fixture.rs", src);
    assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    assert_eq!(outcome.suppressions.len(), 1);
    let s = &outcome.suppressions[0];
    assert_eq!(s.rule, "D2");
    assert_eq!(s.line, 1);
    assert!(s.used);
    assert_eq!(s.reason, "never iterated, keyed lookups only");
}

#[test]
fn a_justified_d1_suppression_is_accepted_and_inventoried() {
    // The sim crate's fuzz campaign driver reads the wall clock for its
    // operator-facing seeds/sec rate — the canonical justified D1 allow.
    // The suppression must silence D1 without tripping S1, and must show
    // up (used) in the inventory so reviewers can audit it.
    let src = include_str!("fixtures/d1_allowed.rs");
    let outcome = lint_source("crates/sim/src/fixture.rs", src);
    assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    assert_eq!(outcome.suppressions.len(), 1);
    let s = &outcome.suppressions[0];
    assert_eq!(s.rule, "D1");
    assert!(s.used, "the allow must actually cover the Instant::now call");
    assert!(
        s.reason.contains("no simulated state"),
        "the justification must say why determinism is unaffected"
    );
}

#[test]
fn a_suppression_without_a_reason_does_not_suppress() {
    let src = "use std::collections::HashMap; // xlint:allow(D2)\n";
    let fired = rules_fired("crates/core/src/fixture.rs", src);
    assert!(fired.contains(&"D2"), "unjustified allow must not silence the rule");
    assert!(fired.contains(&"S1"), "and the empty reason is itself flagged");
}

#[test]
fn a_suppression_for_the_wrong_rule_does_not_suppress() {
    let src = "use std::collections::HashMap; // xlint:allow(D1) — wrong rule\n";
    let outcome = lint_source("crates/core/src/fixture.rs", src);
    assert!(outcome.violations.iter().any(|v| v.rule == "D2"));
    assert!(!outcome.suppressions[0].used);
}

#[test]
fn an_unknown_rule_id_is_a_hygiene_violation() {
    let src = "fn f() {} // xlint:allow(Q9) — typo\n";
    let fired = rules_fired("crates/core/src/fixture.rs", src);
    assert_eq!(fired, vec!["S1"]);
}

// --- Test-region masking --------------------------------------------------

#[test]
fn cfg_test_modules_are_exempt_from_everything_but_s1() {
    let src = r#"
fn prod() {}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn measures() {
        let t = Instant::now();
        let m: HashMap<u8, u8> = HashMap::new();
        let v = payload.to_vec();
        v.first().unwrap();
        let _ = (t, m);
    }
}
"#;
    assert_clean("crates/core/src/fixture.rs", src);
    // …but code after the test module is linted again.
    let after = format!("{src}\nuse std::collections::HashMap;\n");
    let fired = rules_fired("crates/core/src/fixture.rs", &after);
    assert_eq!(fired, vec!["D2"]);
}

// --- Analyze fixtures (L1/K1/V1) ------------------------------------------

/// Runs the semantic analyzer over one of the mini-workspaces under
/// `tests/fixtures/analyze/`.
fn analyze_fixture(name: &str) -> xtask::LintReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/analyze")
        .join(name);
    xtask::analyze_workspace(&root).expect("fixture scan")
}

#[test]
fn l1_fires_on_lock_order_cycles_and_blocking_io_under_a_lock() {
    let report = analyze_fixture("lock_cycle");
    assert!(report.violations.iter().all(|v| v.rule == "L1"), "{:#?}", report.violations);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("lock-order cycle")),
        "the ab/ba inversion must be reported as a cycle: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("held across blocking `sync_data`")),
        "the barrier under the guard must be flagged: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("held across blocking `epoll_wait`")),
        "the write-queue mutex held across the poller's park must be flagged: {:#?}",
        report.violations
    );
}

#[test]
fn l1_accepts_consistent_order_and_drop_before_blocking() {
    let report = analyze_fixture("lock_order_good");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn l1_sees_locks_declared_in_mod_rs_from_sibling_submodules() {
    let report = analyze_fixture("segmented_wal");
    assert!(report.violations.iter().all(|v| v.rule == "L1"), "{:#?}", report.violations);
    // Fields of a `pub(crate)` struct are lock vocabulary.
    assert!(
        report.violations.iter().any(|v| {
            v.path.ends_with("wal/mod.rs") && v.message.contains("sync_data")
        }),
        "the barrier under the pub(crate) struct's lock must be flagged: {:#?}",
        report.violations
    );
    // The submodule acquires a lock declared in `mod.rs`: the hold is only
    // modelled because the directory module shares its vocabulary.
    assert!(
        report.violations.iter().any(|v| {
            v.path.ends_with("wal/compactor.rs") && v.message.contains("wait")
        }),
        "the condvar park under the cross-file flags lock must be flagged: {:#?}",
        report.violations
    );
}

#[test]
fn a_submodule_suppression_binds_to_the_cross_file_finding() {
    let report = analyze_fixture("segmented_wal_good");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
    let allow = report
        .suppressions
        .iter()
        .find(|s| s.path.ends_with("wal/compactor.rs"))
        .expect("the submodule allow must be inventoried");
    assert!(
        allow.used,
        "the allow must bind to the cross-file L1 finding, not rot as stale: {allow:#?}"
    );
}

#[test]
fn the_forget_floor_bug_trips_both_k1_and_v1() {
    let report = analyze_fixture("key_lifecycle");
    // The PR 7 bug: recovery reads the floor, nothing persists it.
    assert!(
        report.violations.iter().any(|v| {
            v.rule == "K1" && v.path.ends_with("multi.rs") && v.message.contains("never persisted")
        }),
        "the unwritten floor must be reported at its recovery read: {:#?}",
        report.violations
    );
    // The same bug seen from the field side: the volatile floor is raised
    // with no durable write on its step.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "V1" && v.message.contains("silently diverges")),
        "the write-free floor raise must be reported: {:#?}",
        report.violations
    );
    // The inverse K1 half: the journal is written but never replayed on
    // recovery.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "K1" && v.message.contains("no recovery path")),
        "the unreplayed journal must be reported at its write: {:#?}",
        report.violations
    );
}

#[test]
fn k1_accepts_persist_plus_recovery_read() {
    let report = analyze_fixture("key_lifecycle_good");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

#[test]
fn v1_fires_on_unpersisted_mutations_and_unknown_twins() {
    let report = analyze_fixture("volatile_twin");
    assert!(report.violations.iter().all(|v| v.rule == "V1"), "{:#?}", report.violations);
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("silently diverges")),
        "the write-free mutation must be flagged: {:#?}",
        report.violations
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.message.contains("names no key constructor")),
        "the dangling twin annotation must be flagged: {:#?}",
        report.violations
    );
}

#[test]
fn v1_accepts_a_twin_write_in_the_callee_closure() {
    let report = analyze_fixture("volatile_twin_good");
    assert!(report.violations.is_empty(), "{:#?}", report.violations);
}

// --- Scoping --------------------------------------------------------------

#[test]
fn shims_fixtures_and_benches_are_out_of_scope() {
    let bad = include_str!("fixtures/d1_bad.rs");
    assert_clean("shims/rand/src/lib.rs", bad);
    assert_clean("crates/xtask/tests/fixtures/d1_bad.rs", bad);
    assert_clean("crates/bench/src/fixture.rs", bad);
    // Test-like files only answer to S1.
    assert_clean("tests/fixture.rs", bad);
    assert_clean("examples/fixture.rs", bad);
    assert_clean("crates/core/tests/fixture.rs", bad);
}
